// Score points against a khss_serve daemon and (optionally) verify the
// answers bit-for-bit against a reference score file.
//
//   ./khss_score --socket /tmp/khss.sock --model NAME --points test.csv
//                [--expect scores.csv] [--out scores.csv] [--batch B]
//
// --points is a bare numeric CSV (one test point per row).  --batch splits
// the request into B-row frames — the answers must not change, that is the
// serving tier's batch-invariance contract.  --expect compares every score
// against the reference CSV with EXACT double equality (both sides are
// written at 17 significant digits, which round-trips doubles): any
// difference means the daemon is not serving the model that produced the
// reference, and the tool exits 1 naming the first mismatching entry.

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <string>

#include "data/io.hpp"
#include "la/matrix.hpp"
#include "serve/client.hpp"
#include "util/argparse.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string socket_path = args.get_string("socket", "");
  const std::string model = args.get_string("model", "");
  const std::string points_path = args.get_string("points", "");
  if (socket_path.empty() || model.empty() || points_path.empty()) {
    std::cerr << args.program()
              << ": usage: khss_score --socket PATH --model NAME "
                 "--points test.csv [--expect scores.csv] [--out out.csv] "
                 "[--batch B]\n";
    return 2;
  }

  try {
    const la::Matrix points = data::load_matrix_csv(points_path);
    const int batch = static_cast<int>(args.get_int("batch", 0));

    serve::ServeClient client(socket_path);
    la::Matrix scores;
    if (batch <= 0 || batch >= points.rows()) {
      scores = client.score(model, points);
    } else {
      for (int i = 0; i < points.rows(); i += batch) {
        const int rows = std::min(batch, points.rows() - i);
        la::Matrix part =
            client.score(model, points.block(i, 0, rows, points.cols()));
        if (i == 0) scores.resize(points.rows(), part.cols());
        scores.set_block(i, 0, part);
      }
    }
    std::cout << "scored " << scores.rows() << " points x " << scores.cols()
              << " outputs via " << socket_path << "\n";

    const std::string out = args.get_string("out", "");
    if (!out.empty()) {
      data::save_matrix_csv(scores, out);
      std::cout << "wrote " << out << "\n";
    }

    const std::string expect_path = args.get_string("expect", "");
    if (!expect_path.empty()) {
      const la::Matrix expect = data::load_matrix_csv(expect_path);
      if (expect.rows() != scores.rows() || expect.cols() != scores.cols()) {
        std::cerr << args.program() << ": " << expect_path << " is "
                  << expect.rows() << " x " << expect.cols()
                  << " but the daemon returned " << scores.rows() << " x "
                  << scores.cols() << "\n";
        return 1;
      }
      for (int i = 0; i < scores.rows(); ++i) {
        for (int j = 0; j < scores.cols(); ++j) {
          if (scores(i, j) != expect(i, j)) {
            std::cerr.precision(17);
            std::cerr << args.program() << ": score mismatch at (" << i
                      << ", " << j << "): served " << scores(i, j)
                      << " vs expected " << expect(i, j) << "\n";
            return 1;
          }
        }
      }
      std::cout << "all " << scores.rows() * scores.cols()
                << " scores match " << expect_path << " bit for bit\n";
    }
  } catch (const std::exception& e) {
    std::cerr << args.program() << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
