// Score points against a khss_serve daemon and (optionally) verify the
// answers bit-for-bit against a reference score file.
//
//   ./khss_score --socket /tmp/khss.sock --model NAME --points test.csv
//                [--expect scores.csv] [--out scores.csv] [--batch B]
//                [--variance] [--expect-variance var.csv]
//                [--out-variance var.csv] [--kernel SPEC]
//
// --points is a bare numeric CSV (one test point per row).  --batch splits
// the request into B-row frames — the answers must not change, that is the
// serving tier's batch-invariance contract.  --expect compares every score
// against the reference CSV with EXACT double equality (both sides are
// written at 17 significant digits, which round-trips doubles): any
// difference means the daemon is not serving the model that produced the
// reference, and the tool exits 1 naming the first mismatching entry.
//
// --variance switches to the kScoreVariance request: the daemon also
// returns one GP posterior variance per point, compared/written by
// --expect-variance / --out-variance with the same exact-equality rule
// (variances are batch-split invariant just like scores).  --kernel asserts
// the served model's canonical kernel spec (via kListModelsV2) matches the
// given spec — a cheap guard against scoring through the wrong model file.

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <string>

#include "data/io.hpp"
#include "kernel/kernel_spec.hpp"
#include "la/matrix.hpp"
#include "serve/client.hpp"
#include "util/argparse.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string socket_path = args.get_string("socket", "");
  const std::string model = args.get_string("model", "");
  const std::string points_path = args.get_string("points", "");
  if (socket_path.empty() || model.empty() || points_path.empty()) {
    std::cerr << args.program()
              << ": usage: khss_score --socket PATH --model NAME "
                 "--points test.csv [--expect scores.csv] [--out out.csv] "
                 "[--batch B] [--variance] [--expect-variance var.csv] "
                 "[--out-variance var.csv] [--kernel SPEC]\n";
    return 2;
  }

  try {
    const la::Matrix points = data::load_matrix_csv(points_path);
    const int batch = static_cast<int>(args.get_int("batch", 0));
    const bool want_variance = args.get_bool("variance", false) ||
                               args.has("expect-variance") ||
                               args.has("out-variance");

    serve::ServeClient client(socket_path);

    const std::string kernel_arg = args.get_string("kernel", "");
    if (!kernel_arg.empty()) {
      // Canonicalize both sides so "matern52:h=.7" matches "matern52:h=0.7".
      const std::string want =
          kernel::kernel_spec(kernel::parse_kernel_spec(kernel_arg));
      std::string got;
      bool found = false;
      for (const serve::ModelDescription& d : client.list_models()) {
        if (d.name == model) {
          got = d.kernel;
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << args.program() << ": daemon does not serve model '"
                  << model << "'\n";
        return 1;
      }
      if (got != want) {
        std::cerr << args.program() << ": model '" << model
                  << "' serves kernel " << got << " but --kernel asked for "
                  << want << "\n";
        return 1;
      }
      std::cout << "model '" << model << "' serves kernel " << got << "\n";
    }

    la::Matrix scores;
    la::Vector variance;
    if (batch <= 0 || batch >= points.rows()) {
      scores = want_variance
                   ? client.score_with_variance(model, points, &variance)
                   : client.score(model, points);
    } else {
      for (int i = 0; i < points.rows(); i += batch) {
        const int rows = std::min(batch, points.rows() - i);
        const la::Matrix chunk = points.block(i, 0, rows, points.cols());
        la::Matrix part;
        if (want_variance) {
          la::Vector vpart;
          part = client.score_with_variance(model, chunk, &vpart);
          variance.insert(variance.end(), vpart.begin(), vpart.end());
        } else {
          part = client.score(model, chunk);
        }
        if (i == 0) scores.resize(points.rows(), part.cols());
        scores.set_block(i, 0, part);
      }
    }
    std::cout << "scored " << scores.rows() << " points x " << scores.cols()
              << " outputs via " << socket_path
              << (want_variance ? " (with posterior variance)" : "") << "\n";

    const std::string out = args.get_string("out", "");
    if (!out.empty()) {
      data::save_matrix_csv(scores, out);
      std::cout << "wrote " << out << "\n";
    }
    const std::string out_variance = args.get_string("out-variance", "");
    if (!out_variance.empty()) {
      la::Matrix vm(static_cast<int>(variance.size()), 1);
      for (std::size_t i = 0; i < variance.size(); ++i) {
        vm(static_cast<int>(i), 0) = variance[i];
      }
      data::save_matrix_csv(vm, out_variance);
      std::cout << "wrote " << out_variance << "\n";
    }

    const std::string expect_path = args.get_string("expect", "");
    if (!expect_path.empty()) {
      const la::Matrix expect = data::load_matrix_csv(expect_path);
      if (expect.rows() != scores.rows() || expect.cols() != scores.cols()) {
        std::cerr << args.program() << ": " << expect_path << " is "
                  << expect.rows() << " x " << expect.cols()
                  << " but the daemon returned " << scores.rows() << " x "
                  << scores.cols() << "\n";
        return 1;
      }
      for (int i = 0; i < scores.rows(); ++i) {
        for (int j = 0; j < scores.cols(); ++j) {
          if (scores(i, j) != expect(i, j)) {
            std::cerr.precision(17);
            std::cerr << args.program() << ": score mismatch at (" << i
                      << ", " << j << "): served " << scores(i, j)
                      << " vs expected " << expect(i, j) << "\n";
            return 1;
          }
        }
      }
      std::cout << "all " << scores.rows() * scores.cols()
                << " scores match " << expect_path << " bit for bit\n";
    }

    const std::string expect_variance_path =
        args.get_string("expect-variance", "");
    if (!expect_variance_path.empty()) {
      const la::Matrix expect = data::load_matrix_csv(expect_variance_path);
      if (expect.rows() != static_cast<int>(variance.size()) ||
          expect.cols() != 1) {
        std::cerr << args.program() << ": " << expect_variance_path << " is "
                  << expect.rows() << " x " << expect.cols()
                  << " but the daemon returned " << variance.size()
                  << " variances\n";
        return 1;
      }
      for (int i = 0; i < expect.rows(); ++i) {
        if (variance[static_cast<std::size_t>(i)] != expect(i, 0)) {
          std::cerr.precision(17);
          std::cerr << args.program() << ": variance mismatch at row " << i
                    << ": served " << variance[static_cast<std::size_t>(i)]
                    << " vs expected " << expect(i, 0) << "\n";
          return 1;
        }
      }
      std::cout << "all " << expect.rows() << " posterior variances match "
                << expect_variance_path << " bit for bit\n";
    }
  } catch (const std::exception& e) {
    std::cerr << args.program() << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
