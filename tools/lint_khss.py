#!/usr/bin/env python3
"""khss repo lint: project-specific correctness rules clang-tidy cannot express.

Rules (ids used in tools/lint_allowlist.txt):

  naked-numeric-parse
      std::stod/stoi/stol/atof/atoi/strtod outside src/data/io.cpp.  The io.cpp
      loaders wrap these with full-token + range validation and file:line
      context; everywhere else a naked call silently accepts "2.5x" prefixes
      or dies with a context-free std::out_of_range.  Parse through
      data::io or validate the token and allowlist with a justification.

  unseeded-rng
      rand()/srand()/std::random_device/std::default_random_engine, or an
      std::mt19937 constructed without a seed.  khss results must be
      reproducible from the seed recorded in logs; all randomness goes
      through util::Rng with an explicit seed.

  omp-no-schedule
      `#pragma omp parallel for` without an explicit schedule(...) clause.
      The default schedule is implementation-defined, which breaks the
      repo's bit-identical-across-thread-counts determinism contract and
      hides load-imbalance regressions.  Continuation lines (backslash)
      are folded before matching.

  double-accumulation
      A `double x = 0` accumulator followed shortly by `x +=` in src/
      outside src/la/.  Long scalar reductions belong in src/la/ where the
      blocked/pairwise kernels control rounding error and get parallelised
      consistently.  Short fixed-length loops (e.g. dim-d point distances)
      are fine - allowlist them with the justification in a comment.
      (Scope is src/ only: tests and benches accumulate reference errors
      by design.)

  kernel-type-switch
      A `case ... KernelType::` label outside src/kernel/.  Kernel-family
      dispatch lives in the registry in src/kernel/kernel.cpp; a switch over
      KernelType anywhere else silently goes stale the next time a family is
      added.  Branch on kernel::kernel_is_composite / kernel_name or extend
      the registry instead.  (Scope is src/ only: tests may enumerate
      families to pin registry behaviour.)

Allowlist format (tools/lint_allowlist.txt): one entry per line,

    rule-id|path/relative/to/repo|substring-of-offending-line

'#' starts a comment; put the human justification in a comment above each
entry.  Entries that no longer match anything are reported as stale and
fail the run, so the allowlist cannot rot.

Exit status: 0 clean, 1 findings or stale allowlist entries, 2 usage error.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTS = (".cpp", ".hpp", ".h", ".cc")

# rule-id -> dirs it applies to (relative, prefix match)
RULE_SCOPE = {
    "naked-numeric-parse": SCAN_DIRS,
    "unseeded-rng": SCAN_DIRS,
    "omp-no-schedule": SCAN_DIRS,
    "double-accumulation": ("src",),
    "kernel-type-switch": ("src",),
}

NUMERIC_PARSE = re.compile(
    r"std::sto[dilfu]\w*\s*\(|[^\w.]ato[if]\s*\(|[^\w.]strto[dlf]\w*\s*\(")
UNSEEDED_RNG = re.compile(
    r"[^\w.]s?rand\s*\(|std::random_device|std::default_random_engine"
    r"|std::mt19937(?:_64)?\s+\w+\s*;")
OMP_PARALLEL_FOR = re.compile(r"#\s*pragma\s+omp\s.*\bparallel\b.*\bfor\b")
DOUBLE_ACC_DECL = re.compile(r"\bdouble\s+(\w+)(?:\s*=\s*0(?:\.0*)?\s*[;,]|\s*=\s*0(?:\.0*)?\s*$)")
ACC_WINDOW = 30  # lines after the declaration in which `x +=` counts
KERNEL_TYPE_SWITCH = re.compile(r"\bcase\s+(?:\w+::)*KernelType::")


def strip_comments(lines):
    """Return lines with // and /* */ comment text blanked (strings kept)."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        in_str = None
        while i < len(line):
            c = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_str:
                res.append(c)
                if c == "\\":
                    if nxt:
                        res.append(nxt)
                        i += 2
                        continue
                elif c == in_str:
                    in_str = None
                i += 1
                continue
            if c in "\"'":
                in_str = c
                res.append(c)
                i += 1
                continue
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def fold_pragma(code, start):
    """Join a pragma with its backslash-continuation lines."""
    joined = code[start].rstrip()
    i = start
    while joined.endswith("\\") and i + 1 < len(code):
        i += 1
        joined = joined[:-1] + " " + code[i].strip().rstrip()
    return joined


def scan_file(rel, raw):
    findings = []  # (rule, rel, lineno, line-text)
    code = strip_comments(raw)

    def in_scope(rule):
        return any(rel.startswith(d + os.sep) or rel == d for d in RULE_SCOPE[rule])

    for idx, line in enumerate(code):
        no = idx + 1
        text = raw[idx].rstrip("\n")
        if in_scope("naked-numeric-parse") and rel != os.path.join("src", "data", "io.cpp"):
            if NUMERIC_PARSE.search(line):
                findings.append(("naked-numeric-parse", rel, no, text))
        if in_scope("unseeded-rng") and UNSEEDED_RNG.search(line):
            findings.append(("unseeded-rng", rel, no, text))
        if in_scope("omp-no-schedule") and OMP_PARALLEL_FOR.search(line):
            folded = fold_pragma(code, idx)
            if "schedule" not in folded and "taskloop" not in folded:
                findings.append(("omp-no-schedule", rel, no, text))
        if in_scope("kernel-type-switch") and not rel.startswith(
                os.path.join("src", "kernel") + os.sep):
            if KERNEL_TYPE_SWITCH.search(line):
                findings.append(("kernel-type-switch", rel, no, text))
        if in_scope("double-accumulation") and not rel.startswith(
                os.path.join("src", "la") + os.sep):
            m = DOUBLE_ACC_DECL.search(line)
            if m:
                name = m.group(1)
                plus = re.compile(r"\b" + re.escape(name) + r"\s*\+=")
                for j in range(idx + 1, min(idx + 1 + ACC_WINDOW, len(code))):
                    if plus.search(code[j]):
                        findings.append(("double-accumulation", rel, no, text))
                        break
    return findings


def load_allowlist(path):
    entries = []  # (rule, rel, substring, lineno, hits)
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for no, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|", 2)
            if len(parts) != 3:
                print(f"lint_allowlist.txt:{no}: malformed entry (want "
                      f"rule|path|substring): {line}", file=sys.stderr)
                sys.exit(2)
            rule, rel, sub = (p.strip() for p in parts)
            if rule not in RULE_SCOPE:
                print(f"lint_allowlist.txt:{no}: unknown rule '{rule}'",
                      file=sys.stderr)
                sys.exit(2)
            entries.append([rule, rel, sub, no, 0])
    return entries


def main():
    findings = []
    for d in SCAN_DIRS:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if not name.endswith(EXTS):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, REPO)
                with open(full, encoding="utf-8", errors="replace") as f:
                    raw = f.read().splitlines()
                findings.extend(scan_file(rel, raw))

    allow = load_allowlist(os.path.join(REPO, "tools", "lint_allowlist.txt"))

    reported = []
    for rule, rel, no, text in findings:
        suppressed = False
        for entry in allow:
            if entry[0] == rule and entry[1] == rel and entry[2] in text:
                entry[4] += 1
                suppressed = True
                break
        if not suppressed:
            reported.append((rel, no, rule, text))

    status = 0
    for rel, no, rule, text in sorted(reported):
        print(f"{rel}:{no}: [{rule}] {text.strip()}")
        status = 1
    stale = [e for e in allow if e[4] == 0]
    for rule, rel, sub, no, _ in stale:
        print(f"tools/lint_allowlist.txt:{no}: stale entry (matches nothing): "
              f"{rule}|{rel}|{sub}")
        status = 1
    if status == 0:
        print(f"lint_khss: clean ({len(findings)} findings, all allowlisted: "
              f"{len(allow)} entries)")
    return status


if __name__ == "__main__":
    sys.exit(main())
