// Model-serving daemon: load .khss model files, answer scoring requests
// over a local socket.
//
//   ./khss_serve --socket /tmp/khss.sock model.khss [name=other.khss ...]
//                [--max-batch 4096] [--threads N] [--kernel SPEC]
//
// Each positional argument is a model file; `name=path` picks the serving
// name explicitly, otherwise the file's basename (minus extension) is used.
// --kernel asserts every loaded model's canonical kernel spec matches SPEC
// (kernel/kernel_spec.hpp grammar) — a deploy-time guard that the model
// files on disk are the kernels the operator thinks they are.
// Clients speak the length-prefixed protocol in src/serve/protocol.hpp
// (khss_score, bench_serving --serve, or serve::ServeClient directly).
// Concurrent requests for the same model are coalesced into dynamic batches
// by the server's batcher thread — safe because scores are bit-identical
// under any batch split.
//
// Shutdown is graceful on SIGINT/SIGTERM or a client kShutdown frame:
// in-flight and queued requests are answered, then the socket is unlinked
// and per-model serving stats are printed.

#include <csignal>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernel/kernel_spec.hpp"
#include "serialize/model_io.hpp"
#include "serve/server.hpp"
#include "solver/solver.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"

using namespace khss;

namespace {

// Written by the signal handler, polled by the main wait loop.
volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

// "name=path" -> {name, path}; bare path -> basename minus extension.
std::pair<std::string, std::string> parse_model_arg(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  if (eq != std::string::npos && eq > 0) {
    return {arg.substr(0, eq), arg.substr(eq + 1)};
  }
  const std::size_t slash = arg.find_last_of('/');
  std::string base =
      slash == std::string::npos ? arg : arg.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return {base, arg};
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty() || args.positional().empty()) {
    std::cerr << args.program()
              << ": usage: khss_serve --socket PATH model.khss "
                 "[name=other.khss ...] [--max-batch 4096] [--threads N]\n";
    return 2;
  }
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) util::set_threads(threads);

  serve::ServerOptions opts;
  opts.socket_path = socket_path;
  opts.max_batch_points = static_cast<int>(args.get_int("max-batch", 4096));

  serve::ModelServer server(opts);
  try {
    const std::string kernel_arg = args.get_string("kernel", "");
    const std::string want_kernel =
        kernel_arg.empty()
            ? std::string()
            : kernel::kernel_spec(kernel::parse_kernel_spec(kernel_arg));
    for (const std::string& arg : args.positional()) {
      const auto [name, path] = parse_model_arg(arg);
      serialize::LoadedModel loaded = serialize::load_model(path);
      const std::string spec =
          kernel::kernel_spec(loaded.model.options().kernel);
      std::cout << "loaded '" << name << "' from " << path << ": n = "
                << loaded.model.n() << ", dim = " << loaded.predictor.dim()
                << ", outputs = " << loaded.predictor.num_outputs()
                << ", backend = "
                << solver::backend_name(loaded.model.options().backend)
                << ", kernel = " << spec << "\n";
      if (!want_kernel.empty() && spec != want_kernel) {
        throw std::runtime_error("model '" + name + "' from " + path +
                                 " serves kernel " + spec +
                                 " but --kernel requires " + want_kernel);
      }
      server.add_model(name, std::move(loaded));
    }
    server.start();
  } catch (const std::exception& e) {
    std::cerr << args.program() << ": " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::cout << "serving " << args.positional().size() << " model(s) on "
            << socket_path << " (" << util::max_threads()
            << " threads); SIGINT/SIGTERM or a shutdown frame stops\n"
            << std::flush;

  // Poll so the loop notices both a client kShutdown and a signal.
  while (!server.wait_for_shutdown(/*poll_ms=*/200) && g_signal == 0) {
  }
  std::cout << (g_signal != 0 ? "signal received" : "shutdown requested")
            << ", draining\n";
  server.stop();

  util::Table table({"model", "requests", "points", "batches", "busy s"});
  for (const auto& [name, s] : server.stats()) {
    table.add_row({name, util::Table::fmt_int(static_cast<long>(s.requests)),
                   util::Table::fmt_int(static_cast<long>(s.points)),
                   util::Table::fmt_int(static_cast<long>(s.batches)),
                   util::Table::fmt(s.busy_seconds, 3)});
  }
  table.print(std::cout, "serving stats");
  return 0;
}
