// Train a KRR model and persist it as a .khss container for khss_serve.
//
//   ./khss_save --out model.khss [--backend hss-direct] [--n 800] [--dim 8]
//               [--classes 3] [--seed 1] [--h 1.2] [--lambda 1.0]
//               [--kernel "matern52:h=0.7"] [--rtol 1e-6] [--data file.csv]
//               [--ntest 100] [--dump-test test.csv]
//               [--dump-scores scores.csv] [--dump-variance var.csv]
//
// Data: --data loads a labeled CSV (label first column, data/io.hpp);
// otherwise a synthetic Gaussian-blob dataset is generated from the seed.
// The model is fit one-vs-all and saved with serialize::save_model, so any
// backend's compressed + factored state round-trips and the loaded model
// scores bit-identically (tests/test_serialize_roundtrip.cpp).
//
// --kernel takes any spec the kernel zoo parses (kernel/kernel_spec.hpp):
// atoms like "gaussian:h=1.2" or "matern32:h=0.7", composites like
// "sum(gaussian:h=1,dot:h=2:w=0.5)".  Without it the kernel is gaussian at
// the --h bandwidth (the historical behavior, bit for bit).
//
// --dump-test / --dump-scores / --dump-variance write a deterministic
// test-point matrix, its IN-PROCESS decision scores, and its IN-PROCESS GP
// posterior variances as full-precision CSV (17 digits: doubles round-trip
// exactly).  CI feeds them to khss_score --expect / --expect-variance to
// prove the daemon's socket answers match in-process results bit for bit.

#include <iostream>
#include <stdexcept>
#include <string>

#include "data/io.hpp"
#include "data/synthetic.hpp"
#include "kernel/kernel_spec.hpp"
#include "krr/krr.hpp"
#include "serialize/model_io.hpp"
#include "solver/solver.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/threads.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::cerr << args.program()
              << ": --out <model.khss> is required\n"
                 "usage: khss_save --out model.khss [--backend NAME] "
                 "[--n N] [--dim D] [--classes C] [--seed S] [--data csv]\n"
                 "                 [--ntest M --dump-test t.csv "
                 "--dump-scores s.csv]\n";
    return 2;
  }
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) util::set_threads(threads);

  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  try {
    // ----------------------------------------------------------- dataset
    data::Dataset ds;
    const std::string data_path = args.get_string("data", "");
    if (!data_path.empty()) {
      ds = data::load_csv(data_path);
    } else {
      util::Rng rng(seed);
      data::BlobSpec spec;
      spec.n = static_cast<int>(args.get_int("n", 800));
      spec.dim = static_cast<int>(args.get_int("dim", 8));
      spec.num_classes = static_cast<int>(args.get_int("classes", 3));
      ds = data::make_blobs(spec, rng);
    }

    krr::KRROptions opts;
    opts.backend = solver::backend_from_name_cli(
        args.get_string("backend", "hss-direct"));
    const std::string kernel_spec_arg = args.get_string("kernel", "");
    if (!kernel_spec_arg.empty()) {
      opts.kernel = kernel::parse_kernel_spec(kernel_spec_arg);
    } else {
      opts.kernel.h = args.get_double("h", 1.2);
    }
    opts.lambda = args.get_double("lambda", 1.0);
    opts.hss_rtol = args.get_double("rtol", 1e-6);
    opts.nystrom_landmarks =
        static_cast<int>(args.get_int("landmarks", ds.n() / 2));
    opts.seed = seed;

    // ---------------------------------------------------------- fit + save
    std::cout << "khss_save: fitting " << solver::backend_name(opts.backend)
              << " with kernel " << kernel::kernel_spec(opts.kernel) << " on "
              << ds.n() << " points (dim " << ds.dim() << ", "
              << ds.num_classes << " classes, " << util::max_threads()
              << " threads)\n";
    util::Timer fit_timer;
    krr::OneVsAllKRR clf(opts);
    clf.fit(ds.points, ds.labels, ds.num_classes);
    std::cout << "fit in " << fit_timer.seconds() << " s, train accuracy "
              << 100.0 * clf.accuracy(ds.points, ds.labels) << "%\n";

    serialize::save_model(out, clf);
    std::cout << "wrote " << out << "\n";

    // ------------------------------------------- optional test-point dump
    const std::string dump_test = args.get_string("dump-test", "");
    const std::string dump_scores = args.get_string("dump-scores", "");
    const std::string dump_variance = args.get_string("dump-variance", "");
    if (!dump_test.empty() || !dump_scores.empty() || !dump_variance.empty()) {
      const int ntest = static_cast<int>(args.get_int("ntest", 100));
      util::Rng rng(seed + 1);
      la::Matrix test(ntest, ds.dim());
      rng.fill_normal(test.data(), test.size());
      if (!dump_test.empty()) {
        data::save_matrix_csv(test, dump_test);
        std::cout << "wrote " << ntest << " test points to " << dump_test
                  << "\n";
      }
      if (!dump_scores.empty()) {
        data::save_matrix_csv(clf.decision_scores(test), dump_scores);
        std::cout << "wrote in-process scores to " << dump_scores << "\n";
      }
      if (!dump_variance.empty()) {
        const la::Vector var = clf.model().posterior_variance(test);
        la::Matrix vm(static_cast<int>(var.size()), 1);
        for (std::size_t i = 0; i < var.size(); ++i) {
          vm(static_cast<int>(i), 0) = var[i];
        }
        data::save_matrix_csv(vm, dump_variance);
        std::cout << "wrote in-process posterior variances to "
                  << dump_variance << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << args.program() << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
