// One-shot GEMM blocking/kernel autotuner driver (DESIGN.md "Compute core").
//
//   ./khss_autotune [--size 512] [--reps 3] [--threads N]
//                   [--out khss_gemm.cfg]
//
// Runs la::detail::autotune_gemm — a timed sweep of every supported kernel
// variant across the candidate KC/MC/NC grid — and writes the winner to
// --out in the one-line cache format "kc,mc,nc,kernel".  Later runs pick it
// up with KHSS_GEMM_CONFIG=<path>; nothing in-process is mutated here, and
// the library never autotunes on its own unless KHSS_GEMM_AUTOTUNE=1 is set
// (see gemm_tune.hpp for the full resolution order).

#include <cstdlib>
#include <iostream>
#include <string>

#include "la/gemm_kernel.hpp"
#include "la/gemm_tune.hpp"
#include "util/argparse.hpp"
#include "util/threads.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int size = static_cast<int>(args.get_int("size", 512));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string out = args.get_string("out", "khss_gemm.cfg");
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) util::set_threads(threads);
  if (size < 64 || reps < 1) {
    std::cerr << args.program()
              << ": --size must be >= 64 and --reps >= 1\n";
    return 2;
  }

  std::cout << "khss_autotune: sweeping blocking grid at size " << size
            << " (best of " << reps << " reps, " << util::max_threads()
            << " threads)\n";
  std::cout << "supported kernels:";
  for (const std::string& k : la::detail::supported_gemm_kernels()) {
    std::cout << " " << k;
  }
  std::cout << "\n";

  const la::detail::GemmConfig cfg = la::detail::autotune_gemm(size, reps);
  const la::detail::GemmBlocking def{};
  std::cout << "winner: kernel=" << cfg.kernel << " kc=" << cfg.blocking.kc
            << " mc=" << cfg.blocking.mc << " nc=" << cfg.blocking.nc
            << "  (pinned default: " << la::detail::gemm_kernel_name()
            << " kc=" << def.kc << " mc=" << def.mc << " nc=" << def.nc
            << ")\n";

  if (!la::detail::write_gemm_config_file(out, cfg)) {
    std::cerr << args.program() << ": could not write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " ("
            << la::detail::format_gemm_config(cfg) << ")\n"
            << "use it with: KHSS_GEMM_CONFIG=" << out << " <binary>\n";
  return 0;
}
