// Quickstart: binary classification with hierarchically compressed kernel
// ridge regression — the paper's Algorithm 1 in ~40 lines of user code.
//
//   ./quickstart [--n 4000] [--h 1.0] [--lambda 1.0]
//
// Generates a clustered binary dataset, reorders it with recursive 2-means,
// compresses the kernel matrix in HSS form via randomized sampling, factors
// it with ULV, and reports test accuracy plus the compression statistics the
// paper tracks (memory, maximum off-diagonal rank).

#include <iostream>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "krr/krr.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 4000));
  const double h = args.get_double("h", 1.0);
  const double lambda = args.get_double("lambda", 1.0);

  // A clustered two-class problem (the regime where clustering-based
  // reordering pays off, per the paper).
  util::Rng rng(args.get_int("seed", 1));
  data::BlobSpec spec;
  spec.n = n;
  spec.dim = 8;
  spec.num_classes = 2;
  spec.clusters_per_class = 3;
  spec.center_spread = 4.0;
  data::Dataset ds = data::make_blobs(spec, rng);
  data::Split split = data::split_and_normalize(ds, 0.8, 0.0, 0.2, rng);

  krr::KRROptions opts;
  opts.ordering = cluster::OrderingMethod::kTwoMeans;  // Step 0
  // Steps 1-2: any registered backend ("dense", "hss-rand-h", "hodlr-smw",
  // "nystrom", ...) drops in via --backend.
  opts.backend = solver::backend_from_name_cli(
      args.get_string("backend", "hss-rand-dense"));
  opts.kernel.h = h;
  opts.lambda = lambda;
  opts.hss_rtol = 1e-2;

  krr::KRRClassifier clf(opts);
  clf.fit(split.train.points, split.train.one_vs_all(1));
  const double acc =
      clf.accuracy(split.test.points, split.test.one_vs_all(1));  // Steps 3-4

  const auto& st = clf.model().stats();
  util::Table table({"metric", "value"});
  table.add_row({"backend", krr::backend_name(opts.backend)});
  table.add_row({"train points", util::Table::fmt_int(split.train.n())});
  table.add_row({"test accuracy", util::Table::fmt_pct(acc)});
  table.add_row({"compressed memory (MB)",
                 util::Table::fmt_mb(
                     static_cast<double>(st.compressed_memory_bytes))});
  table.add_row({"max rank", util::Table::fmt_int(st.max_rank)});
  table.add_row({"cluster time (s)", util::Table::fmt(st.cluster_seconds)});
  table.add_row({"construction time (s)",
                 util::Table::fmt(st.compress_seconds)});
  table.add_row({"factor time (s)", util::Table::fmt(st.factor_seconds)});
  table.add_row({"solve time (s)", util::Table::fmt(st.solve_seconds, 4)});
  table.print(std::cout, "quickstart: hierarchical kernel ridge regression");
  return 0;
}
