// Large-scale pipeline: the paper's headline configuration (Section 5.4-5.6).
//
//   ./large_scale_pipeline [--n 20000] [--dataset SUSY] [--threads 0]
//
// Runs the H-accelerated HSS pipeline at a size where forming the dense
// kernel matrix would already cost n^2 * 8 bytes (3.2 GB at n = 20,000), and
// prints the Table 4-style phase breakdown plus the memory the paper's
// Section 5.5 argument is about (dense vs HSS).

#include <algorithm>
#include <iostream>

#include "data/datasets.hpp"
#include "krr/krr.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 20000));
  const std::string name = args.get_string("dataset", "SUSY");
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) util::set_threads(threads);

  const auto& info = data::paper_dataset_info(name);
  data::Dataset ds = data::make_paper_dataset(name, n + 1000);
  util::Rng rng(args.get_int("seed", 4));
  data::Split split = data::split_and_normalize(
      ds, static_cast<double>(n) / ds.n(), 0.0, 1000.0 / ds.n(), rng);

  krr::KRROptions opts;
  opts.ordering = cluster::OrderingMethod::kTwoMeans;
  // Default: fast structured sampling; any registered backend drops in.
  opts.backend = solver::backend_from_name_cli(
      args.get_string("backend", "hss-rand-h"));
  opts.kernel.h = args.get_double("h", info.h);
  // Regularization must grow with n on noisy data (the paper likewise uses
  // different lambda at 4.5M than at 10K, Table 3 vs Table 2).
  opts.lambda = args.get_double(
      "lambda", info.lambda * std::max(1, split.train.n() / 1000));
  opts.hss_rtol = 1e-1;

  krr::KRRClassifier clf(opts);
  clf.fit(split.train.points, split.train.one_vs_all(info.target_class));
  const double acc = clf.accuracy(split.test.points,
                                  split.test.one_vs_all(info.target_class));

  const auto& st = clf.model().stats();
  const double dense_mb =
      static_cast<double>(split.train.n()) * split.train.n() * 8.0 /
      (1024.0 * 1024.0);

  util::Table table({"phase / metric", "value"});
  table.add_row({"dataset", name + " twin (d=" + std::to_string(info.dim) + ")"});
  table.add_row({"train points", util::Table::fmt_int(split.train.n())});
  table.add_row({"threads", util::Table::fmt_int(util::max_threads())});
  table.add_row({"clustering (s)", util::Table::fmt(st.cluster_seconds)});
  table.add_row({"H construction (s)",
                 util::Table::fmt(st.h_construction_seconds)});
  table.add_row({"compression (s)",
                 util::Table::fmt(st.compress_seconds)});
  table.add_row({"  of which sampling (s)",
                 util::Table::fmt(st.sampling_seconds)});
  table.add_row({"factorization (s)", util::Table::fmt(st.factor_seconds)});
  table.add_row({"solve (s)", util::Table::fmt(st.solve_seconds, 4)});
  table.add_row({"dense K would need (MB)", util::Table::fmt(dense_mb, 1)});
  table.add_row({"H memory (MB)",
                 util::Table::fmt_mb(static_cast<double>(st.h_memory_bytes))});
  table.add_row({"compressed memory (MB)",
                 util::Table::fmt_mb(
                     static_cast<double>(st.compressed_memory_bytes))});
  table.add_row({"max rank", util::Table::fmt_int(st.max_rank)});
  table.add_row({"test accuracy", util::Table::fmt_pct(acc)});
  table.print(std::cout, "large-scale H-accelerated HSS pipeline");
  return 0;
}
