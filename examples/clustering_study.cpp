// Clustering study: the paper's central experiment in miniature.
//
//   ./clustering_study [--dataset GAS] [--n 3000]
//
// For one dataset twin, runs Algorithm 1 under all four orderings the paper
// compares (NP, KD, PCA, 2MN) plus the agglomerative baseline when n permits,
// and prints the Section 4.2 metrics: memory, max rank, accuracy, times.

#include <iostream>

#include "data/datasets.hpp"
#include "krr/krr.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string name = args.get_string("dataset", "GAS");
  const int n = static_cast<int>(args.get_int("n", 3000));

  const auto& info = data::paper_dataset_info(name);
  data::Dataset ds = data::make_paper_dataset(name, n + 1000);
  util::Rng rng(args.get_int("seed", 2));
  data::Split split = data::split_and_normalize(
      ds, static_cast<double>(n) / ds.n(), 0.0,
      1000.0 / ds.n(), rng);
  const auto ytrain = split.train.one_vs_all(info.target_class);
  const auto ytest = split.test.one_vs_all(info.target_class);

  std::vector<cluster::OrderingMethod> methods = {
      cluster::OrderingMethod::kNatural, cluster::OrderingMethod::kKD,
      cluster::OrderingMethod::kPCA, cluster::OrderingMethod::kTwoMeans};
  if (split.train.n() <= 8192) {
    methods.push_back(cluster::OrderingMethod::kAgglomerative);
  }

  const krr::SolverBackend backend = solver::backend_from_name_cli(
      args.get_string("backend", "hss-rand-dense"));

  util::Table table({"ordering", "memory (MB)", "max rank", "accuracy",
                     "construct (s)", "factor (s)", "solve (s)"});
  for (auto method : methods) {
    krr::KRROptions opts;
    opts.ordering = method;
    opts.backend = backend;
    opts.kernel.h = info.h;
    opts.lambda = info.lambda;
    opts.hss_rtol = 1e-1;  // the paper's classification tolerance

    krr::KRRClassifier clf(opts);
    clf.fit(split.train.points, ytrain);
    const double acc = clf.accuracy(split.test.points, ytest);
    const auto& st = clf.model().stats();

    table.add_row({cluster::ordering_name(method),
                   util::Table::fmt_mb(
                       static_cast<double>(st.compressed_memory_bytes)),
                   util::Table::fmt_int(st.max_rank),
                   util::Table::fmt_pct(acc),
                   util::Table::fmt(st.compress_seconds),
                   util::Table::fmt(st.factor_seconds),
                   util::Table::fmt(st.solve_seconds, 4)});
  }
  table.print(std::cout, name + " twin: preprocessing comparison (paper Sec. 4)");
  std::cout << "paper reference (Table 2, 10K train): 2MN memory "
            << info.paper_memory_2mn_mb << " MB, accuracy "
            << info.paper_accuracy << "%\n";
  return 0;
}
