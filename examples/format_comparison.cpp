// Format comparison: every registered solver backend on one problem.
//
//   ./format_comparison [--n 2500] [--dataset COVTYPE] [--backend <one>]
//
// Sweeps the solver registry — dense exact, HSS+ULV (direct and randomized,
// dense- and H-sampled), HSS-preconditioned CG, HODLR+SMW (the
// INV-ASKIT-style comparator) and the Nystrom global-low-rank baseline — on
// the same one-vs-all task through the *same* KRRModel path, reporting
// accuracy, precision/recall/F1/AUC and the compression footprint.  New
// backends registered in src/solver/ show up here automatically.

#include <iostream>

#include "data/datasets.hpp"
#include "krr/krr.hpp"
#include "krr/metrics.hpp"
#include "solver/solver.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 2500));
  const std::string name = args.get_string("dataset", "COVTYPE");

  // Default: the full registry.  --backend restricts to one pipeline.
  std::vector<krr::SolverBackend> backends;
  if (args.has("backend")) {
    backends.push_back(
        solver::backend_from_name_cli(args.get_string("backend", "")));
  } else {
    backends = solver::all_backends();
  }

  const auto& info = data::paper_dataset_info(name);
  data::Dataset ds = data::make_paper_dataset(name, n + 1000);
  util::Rng rng(args.get_int("seed", 6));
  data::Split split = data::split_and_normalize(
      ds, static_cast<double>(n) / ds.n(), 0.0, 1000.0 / ds.n(), rng);
  const auto ytrain = split.train.one_vs_all(info.target_class);
  const auto ytest = split.test.one_vs_all(info.target_class);

  util::Table table({"backend", "fit (s)", "memory (MB)", "accuracy",
                     "precision", "recall", "F1", "AUC"});

  for (krr::SolverBackend backend : backends) {
    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = backend;
    opts.kernel.h = info.h;
    opts.lambda = info.lambda;
    opts.hss_rtol = 1e-1;

    util::Timer t;
    krr::KRRClassifier clf(opts);
    clf.fit(split.train.points, ytrain);
    const double fit_seconds = t.seconds();

    la::Vector scores = clf.decision_function(split.test.points);
    std::vector<int> pred(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      pred[i] = scores[i] >= 0 ? 1 : -1;
    }
    krr::ConfusionMatrix cm = krr::confusion(pred, ytest);
    const auto& st = clf.model().stats();
    table.add_row({krr::backend_name(backend),
                   util::Table::fmt(fit_seconds),
                   util::Table::fmt_mb(
                       static_cast<double>(st.compressed_memory_bytes)),
                   util::Table::fmt_pct(cm.accuracy()),
                   util::Table::fmt_pct(cm.precision()),
                   util::Table::fmt_pct(cm.recall()),
                   util::Table::fmt_pct(cm.f1()),
                   util::Table::fmt(krr::roc_auc(scores, ytest), 3)});
  }

  table.print(std::cout, name + " twin (" + std::to_string(split.train.n()) +
                             " train / " + std::to_string(split.test.n()) +
                             " test): every registered solver backend");
  return 0;
}
