// Format comparison: every solver pipeline in the library on one problem.
//
//   ./format_comparison [--n 2500] [--dataset COVTYPE]
//
// Runs the dense exact baseline, HSS+ULV (direct and randomized, dense- and
// H-sampled), HODLR+SMW (the INV-ASKIT-style comparator), HSS-preconditioned
// CG, and the Nystrom global-low-rank baseline on the same one-vs-all task,
// reporting accuracy, precision/recall/F1/AUC and the compression footprint.

#include <iostream>

#include "data/datasets.hpp"
#include "hodlr/hodlr.hpp"
#include "krr/krr.hpp"
#include "krr/metrics.hpp"
#include "krr/nystrom.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace khss;

namespace {

struct Row {
  std::string name;
  double fit_seconds;
  double mem_mb;
  la::Vector scores;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 2500));
  const std::string name = args.get_string("dataset", "COVTYPE");

  const auto& info = data::paper_dataset_info(name);
  data::Dataset ds = data::make_paper_dataset(name, n + 1000);
  util::Rng rng(args.get_int("seed", 6));
  data::Split split = data::split_and_normalize(
      ds, static_cast<double>(n) / ds.n(), 0.0, 1000.0 / ds.n(), rng);
  const auto ytrain = split.train.one_vs_all(info.target_class);
  const auto ytest = split.test.one_vs_all(info.target_class);

  std::vector<Row> rows;

  auto run_backend = [&](const std::string& label, krr::SolverBackend backend,
                         double rtol) {
    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = backend;
    opts.kernel.h = info.h;
    opts.lambda = info.lambda;
    opts.hss_rtol = rtol;
    util::Timer t;
    krr::KRRClassifier clf(opts);
    clf.fit(split.train.points, ytrain);
    Row row;
    row.name = label;
    row.fit_seconds = t.seconds();
    const auto& st = clf.model().stats();
    row.mem_mb = static_cast<double>(
                     st.hss_memory_bytes ? st.hss_memory_bytes
                                         : st.dense_memory_bytes) /
                 (1024.0 * 1024.0);
    row.scores = clf.decision_function(split.test.points);
    rows.push_back(std::move(row));
  };

  run_backend("dense exact", krr::SolverBackend::kDenseExact, 0.0);
  run_backend("HSS direct + ULV", krr::SolverBackend::kHSSDirect, 1e-1);
  run_backend("HSS rand (dense sampling)", krr::SolverBackend::kHSSRandomDense,
              1e-1);
  run_backend("HSS rand (H sampling)", krr::SolverBackend::kHSSRandomH, 1e-1);
  run_backend("CG + HSS preconditioner",
              krr::SolverBackend::kIterativeHSSPrecond, 1e-1);

  // HODLR + SMW comparator (assembled by hand; it is not a KRR backend).
  {
    util::Timer t;
    cluster::OrderingOptions copts;
    copts.leaf_size = 16;
    cluster::ClusterTree tree = cluster::build_cluster_tree(
        split.train.points, cluster::OrderingMethod::kTwoMeans, copts);
    la::Matrix permuted =
        cluster::apply_row_permutation(split.train.points, tree.perm());
    kernel::KernelMatrix km(
        std::move(permuted),
        {kernel::KernelType::kGaussian, info.h, 2, 1.0}, info.lambda);
    hodlr::HODLROptions hopts;
    hopts.rtol = 1e-1;
    hodlr::HODLRMatrix hm(km, tree, hopts);
    hodlr::SMWFactorization smw(hm);

    la::Vector yp(split.train.n());
    for (int i = 0; i < split.train.n(); ++i) {
      yp[i] = ytrain[tree.perm()[i]];
    }
    la::Vector wp = smw.solve(yp);

    Row row;
    row.name = "HODLR + SMW (INV-ASKIT style)";
    row.fit_seconds = t.seconds();
    row.mem_mb = static_cast<double>(hm.stats().memory_bytes) /
                 (1024.0 * 1024.0);
    row.scores = km.cross_times_vector(split.test.points, wp);
    rows.push_back(std::move(row));
  }

  // Nystrom baseline.
  {
    krr::NystromOptions opts;
    opts.landmarks = 256;
    opts.kernel.h = info.h;
    opts.lambda = info.lambda;
    util::Timer t;
    krr::NystromKRR ny(opts);
    ny.fit(split.train.points);
    la::Vector y(ytrain.size());
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = ytrain[i];
    la::Vector alpha = ny.solve(y);
    Row row;
    row.name = "Nystrom-256 (global low rank)";
    row.fit_seconds = t.seconds();
    row.mem_mb = static_cast<double>(ny.stats().memory_bytes) /
                 (1024.0 * 1024.0);
    row.scores = ny.decision_scores(split.test.points, alpha);
    rows.push_back(std::move(row));
  }

  util::Table table({"pipeline", "fit (s)", "memory (MB)", "accuracy",
                     "precision", "recall", "F1", "AUC"});
  for (const auto& row : rows) {
    std::vector<int> pred(row.scores.size());
    for (std::size_t i = 0; i < row.scores.size(); ++i) {
      pred[i] = row.scores[i] >= 0 ? 1 : -1;
    }
    krr::ConfusionMatrix cm = krr::confusion(pred, ytest);
    table.add_row({row.name, util::Table::fmt(row.fit_seconds),
                   util::Table::fmt(row.mem_mb),
                   util::Table::fmt_pct(cm.accuracy()),
                   util::Table::fmt_pct(cm.precision()),
                   util::Table::fmt_pct(cm.recall()),
                   util::Table::fmt_pct(cm.f1()),
                   util::Table::fmt(krr::roc_auc(row.scores, ytest), 3)});
  }
  table.print(std::cout, name + " twin (" + std::to_string(split.train.n()) +
                             " train / " + std::to_string(split.test.n()) +
                             " test): every pipeline in the library");
  return 0;
}
