// Multi-class one-vs-all classification (Section 2 of the paper).
//
//   ./multiclass_digits [--n 4000] [--batch 64]
//
// Trains a 10-class one-vs-all classifier on the PEN digits twin.  The key
// systems points: all ten binary classifiers share ONE kernel compression
// and ONE ULV factorization — only the right-hand side changes per class —
// and serving shares ONE blocked cross-kernel sweep across all ten classes
// (predict::BatchPredictor; mini-batch streaming demo below).

#include <algorithm>
#include <iostream>

#include "data/datasets.hpp"
#include "krr/krr.hpp"
#include "predict/batch_predictor.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 4000));

  const auto& info = data::paper_dataset_info("PEN");
  data::Dataset ds = data::make_paper_dataset("PEN", n + 1000);
  util::Rng rng(args.get_int("seed", 3));
  data::Split split = data::split_and_normalize(
      ds, static_cast<double>(n) / ds.n(), 0.0, 1000.0 / ds.n(), rng);

  krr::KRROptions opts;
  opts.ordering = cluster::OrderingMethod::kTwoMeans;
  opts.backend = solver::backend_from_name_cli(
      args.get_string("backend", "hss-rand-dense"));
  opts.kernel.h = info.h;
  opts.lambda = info.lambda;
  opts.hss_rtol = 1e-2;

  util::Timer total;
  krr::OneVsAllKRR clf(opts);
  clf.fit(split.train.points, split.train.labels, info.num_classes);
  const double fit_seconds = total.seconds();

  const double acc = clf.accuracy(split.test.points, split.test.labels);

  // Per-class one-vs-all accuracy for context.
  util::Table per_class({"digit", "one-vs-all accuracy"});
  for (int c = 0; c < info.num_classes; ++c) {
    krr::KRRClassifier binary(opts);
    binary.fit(split.train.points, split.train.one_vs_all(c));
    per_class.add_row(
        {util::Table::fmt_int(c),
         util::Table::fmt_pct(binary.accuracy(split.test.points,
                                              split.test.one_vs_all(c)))});
  }

  const auto& st = clf.model().stats();
  std::cout << "PEN twin, " << split.train.n() << " train / "
            << split.test.n() << " test\n";
  std::cout << "multi-class accuracy: " << 100.0 * acc << "%\n";
  std::cout << "one shared compression: " << st.compress_seconds
            << " s construct, " << st.factor_seconds << " s factor, "
            << info.num_classes << " solves, total fit " << fit_seconds
            << " s\n";
  per_class.print(std::cout, "per-class binary classifiers (fresh fits)");

  // Serving demo: stream the test set through the shared BatchPredictor in
  // mini-batches — one kernel sweep scores all ten classes per batch.
  const int batch = static_cast<int>(std::max(1L, args.get_int("batch", 64)));
  const auto& pred = clf.predictor();
  la::Matrix scores;
  util::Timer serve;
  for (int ib = 0; ib < split.test.n(); ib += batch) {
    const int bi = std::min(batch, split.test.n() - ib);
    la::Matrix chunk = split.test.points.block(ib, 0, bi,
                                               split.test.points.cols());
    pred.predict_batch(chunk, scores);
  }
  const double serve_s = serve.seconds();
  std::cout << "serving: " << split.test.n() << " points in batches of "
            << batch << " -> " << split.test.n() / serve_s
            << " points/s (one kernel sweep for all " << info.num_classes
            << " classes, support " << pred.support_size() << "/"
            << split.train.n() << " columns)\n";
  return 0;
}
