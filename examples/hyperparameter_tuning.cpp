// Hyperparameter tuning (Section 5.3): grid search vs black-box optimizer.
//
//   ./hyperparameter_tuning [--n 2000] [--budget 60] [--grid 6]
//
// Reproduces the workflow of Fig. 6: a coarse grid sweep and a budgeted
// black-box search over (h, lambda), both reusing the kernel compression
// across lambda changes (only the diagonal update + refactorization is paid).

#include <iostream>

#include "data/datasets.hpp"
#include "tune/tuner.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 2000));
  const int budget = static_cast<int>(args.get_int("budget", 60));
  const int grid_points = static_cast<int>(args.get_int("grid", 6));

  data::Dataset ds = data::make_paper_dataset("SUSY", n + 1000);
  util::Rng rng(args.get_int("seed", 5));
  data::Split split = data::split_and_normalize(
      ds, static_cast<double>(n) / ds.n(), 500.0 / ds.n(), 500.0 / ds.n(),
      rng);

  // Both tuners reuse the compression across lambda changes for *any*
  // registered backend (the lambda fast path is part of the solver
  // interface) — sweep --backend to compare.
  krr::KRROptions base;
  base.ordering = cluster::OrderingMethod::kTwoMeans;
  base.backend = solver::backend_from_name_cli(
      args.get_string("backend", "hss-rand-dense"));
  base.hss_rtol = 1e-1;

  const auto ytrain = split.train.one_vs_all(1);
  const auto yvalid = split.validation.one_vs_all(1);

  util::Table table({"tuner", "evals", "compressions", "best h",
                     "best lambda", "validation acc"});

  {
    tune::KRRObjective obj(base, split.train.points, ytrain,
                           split.validation.points, yvalid);
    tune::Objective fn = [&obj](double h, double l) { return obj(h, l); };
    tune::GridSpec grid;
    grid.h_points = grid_points;
    grid.lambda_points = grid_points;
    tune::TuneResult res = tune::grid_search(fn, grid);
    table.add_row({"grid", util::Table::fmt_int(res.evaluations),
                   util::Table::fmt_int(obj.compressions()),
                   util::Table::fmt(res.best_h),
                   util::Table::fmt(res.best_lambda),
                   util::Table::fmt_pct(res.best_accuracy)});
  }
  {
    tune::KRRObjective obj(base, split.train.points, ytrain,
                           split.validation.points, yvalid);
    tune::Objective fn = [&obj](double h, double l) { return obj(h, l); };
    tune::BlackBoxSpec spec;
    spec.budget = budget;
    tune::TuneResult res = tune::black_box_search(fn, spec);
    table.add_row({"black-box", util::Table::fmt_int(res.evaluations),
                   util::Table::fmt_int(obj.compressions()),
                   util::Table::fmt(res.best_h),
                   util::Table::fmt(res.best_lambda),
                   util::Table::fmt_pct(res.best_accuracy)});
  }
  table.print(std::cout, "SUSY twin: (h, lambda) tuning (paper Fig. 6)");
  std::cout << "note: 'compressions' counts expensive h rebuilds; lambda-only\n"
               "changes reuse the compression (paper Section 5.3).\n";
  return 0;
}
