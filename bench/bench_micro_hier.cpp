// Micro-benchmarks of the hierarchical-matrix stack (google-benchmark):
// kernel sampling (dense vs H), HSS construction, ULV factor/solve.

#include <benchmark/benchmark.h>

#include "cluster/ordering.hpp"
#include "data/datasets.hpp"
#include "hmat/hmatrix.hpp"
#include "hss/build.hpp"
#include "hss/ulv.hpp"
#include "kernel/kernel.hpp"
#include "util/rng.hpp"

using namespace khss;

namespace {

struct Fixture {
  cluster::ClusterTree tree;
  std::unique_ptr<kernel::KernelMatrix> km;

  static Fixture make(int n) {
    data::Dataset ds = data::make_paper_dataset("SUSY", n);
    data::ColumnTransform t = data::fit_zscore(ds.points);
    t.apply(ds.points);

    Fixture f;
    cluster::OrderingOptions copts;
    copts.leaf_size = 16;
    f.tree = cluster::build_cluster_tree(
        ds.points, cluster::OrderingMethod::kTwoMeans, copts);
    la::Matrix permuted =
        cluster::apply_row_permutation(ds.points, f.tree.perm());
    f.km = std::make_unique<kernel::KernelMatrix>(
        std::move(permuted),
        kernel::KernelParams{kernel::KernelType::kGaussian, 1.0, 2, 1.0},
        1.0);
    return f;
  }

  hss::HSSMatrix build_hss(bool use_h, double rtol = 1e-1) const {
    hss::ExtractFn extract = [this](const std::vector<int>& r,
                                    const std::vector<int>& c) {
      return km->extract(r, c);
    };
    hss::HSSOptions opts;
    opts.rtol = rtol;
    if (use_h) {
      hmat::HOptions hopts;
      hopts.rtol = rtol;
      hmat::HMatrix h(*km, tree, hopts);
      hss::SampleFn sample = [&h](const la::Matrix& r) {
        return h.multiply(r);
      };
      return hss::build_hss_randomized(tree, extract, sample, {}, opts);
    }
    hss::SampleFn sample = [this](const la::Matrix& r) {
      return km->multiply(r);
    };
    return hss::build_hss_randomized(tree, extract, sample, {}, opts);
  }
};

}  // namespace

static void BM_DenseKernelSample(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  util::Rng rng(1);
  la::Matrix r(n, 64);
  rng.fill_normal(r.data(), r.size());
  for (auto _ : state) {
    la::Matrix s = f.km->multiply(r);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_DenseKernelSample)->Arg(2048)->Arg(4096)->Unit(benchmark::kMillisecond);

static void BM_HMatrixBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  for (auto _ : state) {
    hmat::HMatrix h(*f.km, f.tree, {});
    benchmark::DoNotOptimize(&h);
  }
}
BENCHMARK(BM_HMatrixBuild)->Arg(2048)->Arg(4096)->Unit(benchmark::kMillisecond);

static void BM_HMatrixSample(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  hmat::HMatrix h(*f.km, f.tree, {});
  util::Rng rng(2);
  la::Matrix r(n, 64);
  rng.fill_normal(r.data(), r.size());
  for (auto _ : state) {
    la::Matrix s = h.multiply(r);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_HMatrixSample)->Arg(2048)->Arg(4096)->Unit(benchmark::kMillisecond);

static void BM_HSSConstructDenseSampling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  for (auto _ : state) {
    hss::HSSMatrix hssm = f.build_hss(/*use_h=*/false);
    benchmark::DoNotOptimize(&hssm);
  }
}
BENCHMARK(BM_HSSConstructDenseSampling)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

static void BM_HSSConstructHSampling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  for (auto _ : state) {
    hss::HSSMatrix hssm = f.build_hss(/*use_h=*/true);
    benchmark::DoNotOptimize(&hssm);
  }
}
BENCHMARK(BM_HSSConstructHSampling)->Arg(2048)->Unit(benchmark::kMillisecond);

static void BM_HSSMatvec(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  hss::HSSMatrix hssm = f.build_hss(false);
  util::Rng rng(3);
  la::Vector x(n);
  for (auto& v : x) v = rng.normal();
  for (auto _ : state) {
    la::Vector y = hssm.matvec(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_HSSMatvec)->Arg(2048)->Arg(4096)->Unit(benchmark::kMillisecond);

static void BM_ULVFactor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  hss::HSSMatrix hssm = f.build_hss(false);
  for (auto _ : state) {
    hss::ULVFactorization ulv(hssm);
    benchmark::DoNotOptimize(&ulv);
  }
}
BENCHMARK(BM_ULVFactor)->Arg(2048)->Arg(4096)->Unit(benchmark::kMillisecond);

static void BM_ULVSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture f = Fixture::make(n);
  hss::HSSMatrix hssm = f.build_hss(false);
  hss::ULVFactorization ulv(hssm);
  la::Vector b(n, 1.0);
  for (auto _ : state) {
    la::Vector x = ulv.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_ULVSolve)->Arg(2048)->Arg(4096)->Unit(benchmark::kMillisecond);

static void BM_ClusterTree2MN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  data::Dataset ds = data::make_paper_dataset("COVTYPE", n);
  for (auto _ : state) {
    cluster::ClusterTree t = cluster::build_cluster_tree(
        ds.points, cluster::OrderingMethod::kTwoMeans, {});
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ClusterTree2MN)->Arg(4096)->Arg(16384)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
