// Regression harness for the hierarchical solve tier (DESIGN.md "Parallel
// hierarchical solve").
//
//   ./bench_micro_hier [--sizes 2048,8192] [--nrhs 16] [--reps 2]
//                      [--rtol 1e-1] [--json BENCH_hier.json]
//
// Measures the parallel engines — HSS matvec/matmat sweeps, ULV
// factorization/solve, HODLR/SMW factorization/solve — at one thread (the
// serial baseline) and at every hardware thread, and reports the speedups
// plus the per-phase split (elimination sweep vs root LU, forward vs
// backward solve).  A second table pits the OpenMP task-DAG schedule (the
// default for ULV factor and HSS matmat) against the retained
// level-synchronous sweep at max threads.  With --json the numbers go to a
// cross-PR perf trajectory (BENCH_hier.json, committed snapshot at the repo
// root); CI runs this on a small fixed size and uploads the artifact.
//
// Solutions are bit-identical across thread counts and RHS splits by
// construction (pinned in tests/test_determinism.cpp), so the two columns
// time the *same* arithmetic.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/ordering.hpp"
#include "hodlr/hodlr.hpp"
#include "hss/build.hpp"
#include "hss/ulv.hpp"
#include "kernel/kernel.hpp"
#include "util/threads.hpp"
#include "util/timer.hpp"

using namespace khss;

namespace {

struct Fixture {
  cluster::ClusterTree tree;
  std::unique_ptr<kernel::KernelMatrix> km;

  static Fixture make(int n, std::uint64_t seed) {
    data::Dataset ds = data::make_paper_dataset("SUSY", n, seed);
    data::ColumnTransform t = data::fit_zscore(ds.points);
    t.apply(ds.points);

    Fixture f;
    cluster::OrderingOptions copts;
    copts.leaf_size = 16;
    f.tree = cluster::build_cluster_tree(
        ds.points, cluster::OrderingMethod::kTwoMeans, copts);
    la::Matrix permuted =
        cluster::apply_row_permutation(ds.points, f.tree.perm());
    f.km = std::make_unique<kernel::KernelMatrix>(
        std::move(permuted),
        kernel::KernelParams{kernel::KernelType::kGaussian, 1.0, 2, 1.0}, 1.0);
    return f;
  }

  hss::HSSMatrix build_hss(double rtol, std::uint64_t seed) const {
    hss::ExtractFn extract = [this](const std::vector<int>& r,
                                    const std::vector<int>& c) {
      return km->extract(r, c);
    };
    hss::SampleFn sample = [this](const la::Matrix& r) {
      return km->multiply(r);
    };
    hss::HSSOptions opts;
    opts.rtol = rtol;
    opts.seed = seed;
    return hss::build_hss_randomized(tree, extract, sample, {}, opts);
  }
};

// Best-of-reps wall time of fn() after one untimed warmup.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    const double s = t.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

// One timed kernel at 1 thread and at max threads.
struct Pair {
  double serial = 0.0;
  double parallel = 0.0;
  double speedup() const { return parallel > 0.0 ? serial / parallel : 0.0; }
};

template <typename Fn>
Pair timed_pair(int reps, int maxthreads, Fn&& fn) {
  Pair p;
  util::set_threads(1);
  p.serial = best_seconds(reps, fn);
  util::set_threads(maxthreads);
  p.parallel = best_seconds(reps, fn);
  return p;
}

util::Json pair_json(int n, const Pair& p) {
  return util::Json::object()
      .set("n", static_cast<long>(n))
      .set("serial_seconds", p.serial)
      .set("parallel_seconds", p.parallel)
      .set("speedup", p.speedup());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::warn_backend_ignored(args, "drives the hierarchical kernels directly");
  bench::CommonArgs c = bench::parse_common(args, {.n = 0, .dataset = "SUSY"});
  const std::vector<int> sizes =
      bench::parse_sizes(args.get_string("sizes", "2048,8192"), args.program());
  c.n = *std::max_element(sizes.begin(), sizes.end());
  const int nrhs = std::max(1, static_cast<int>(args.get_int("nrhs", 16)));
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 2)));
  const int maxthreads = util::max_threads();

  bench::print_banner(
      "micro_hier",
      "level-parallel ULV / HSS matvec / HODLR-SMW vs 1-thread baseline",
      "single node, 1 vs " + std::to_string(maxthreads) + " threads, rtol " +
          std::to_string(c.rtol));

  util::Json doc = bench::json_header("bench_micro_hier", c);
  doc.set("nrhs", static_cast<long>(nrhs));
  doc.set("reps", static_cast<long>(reps));
  doc.set("threads_max", static_cast<long>(maxthreads));
  util::Json jbuild = util::Json::array();
  util::Json jmatvec = util::Json::array();
  util::Json jmatmat = util::Json::array();
  util::Json jfactor = util::Json::array();
  util::Json jsolve1 = util::Json::array();
  util::Json jsolvek = util::Json::array();
  util::Json jcombined = util::Json::array();
  util::Json jsmw_factor = util::Json::array();
  util::Json jsmw_solve = util::Json::array();
  util::Json jfactor_sched = util::Json::array();
  util::Json jmatmat_sched = util::Json::array();

  util::Table tg({"kernel", "n", "t=1 s", "t=" + std::to_string(maxthreads) +
                  " s", "speedup"});
  util::Table tsched(
      {"kernel", "n", "level-sweep s", "task-dag s", "speedup"});
  auto add_row = [&](const std::string& name, int n, const Pair& p) {
    tg.add_row({name, std::to_string(n), util::Table::fmt(p.serial, 4),
                util::Table::fmt(p.parallel, 4),
                util::Table::fmt(p.speedup(), 2)});
  };

  for (const int n : sizes) {
    Fixture f = Fixture::make(n, c.seed);

    // HSS construction (randomized, dense sampling) — already level-parallel
    // since PR 1; kept on the trajectory for context.
    util::set_threads(maxthreads);
    util::Timer build_timer;
    hss::HSSMatrix hssm = f.build_hss(c.rtol, c.seed);
    const double build_seconds = build_timer.seconds();
    jbuild.push(util::Json::object()
                    .set("n", static_cast<long>(n))
                    .set("seconds", build_seconds)
                    .set("max_rank", static_cast<long>(hssm.max_rank()))
                    .set("memory_bytes",
                         static_cast<long>(hssm.memory_bytes())));
    tg.add_row({"hss_build", std::to_string(n), "-",
                util::Table::fmt(build_seconds, 4), "-"});

    // Level-parallel matvec sweeps.
    util::Rng rng(c.seed + 1);
    la::Vector x(n);
    for (auto& v : x) v = rng.normal();
    la::Matrix xm(n, nrhs);
    rng.fill_normal(xm.data(), xm.size());
    const Pair mv = timed_pair(reps, maxthreads,
                               [&] { la::Vector y = hssm.matvec(x); });
    add_row("hss_matvec", n, mv);
    jmatvec.push(pair_json(n, mv));
    const Pair mm = timed_pair(reps, maxthreads,
                               [&] { la::Matrix y = hssm.matmat(xm); });
    add_row("hss_matmat_" + std::to_string(nrhs), n, mm);
    jmatmat.push(pair_json(n, mm));

    // Level-parallel ULV factorization.  The per-phase split comes from one
    // dedicated instrumented run with its own total, so the JSON splits are
    // self-consistent (the best-of-reps pair totals can be smaller).
    const Pair fac = timed_pair(reps, maxthreads, [&] {
      hss::ULVFactorization ulv(hssm);
      (void)ulv;
    });
    add_row("ulv_factor", n, fac);
    {
      hss::ULVFactorization phase_run(hssm);
      jfactor.push(pair_json(n, fac)
                       .set("phase_total_seconds",
                            phase_run.stats().factor_seconds)
                       .set("tree_seconds",
                            phase_run.stats().factor_tree_seconds)
                       .set("root_seconds",
                            phase_run.stats().factor_root_seconds));
    }

    // Task-DAG schedule (the default above) against the retained
    // level-synchronous sweep, both at max threads — this row isolates what
    // the depend-clause DAG buys over level barriers.  Bit-identical results
    // (pinned in tests/test_ulv.cpp / test_determinism.cpp), same arithmetic.
    util::set_threads(maxthreads);
    const double fac_sweep = best_seconds(reps, [&] {
      hss::ULVFactorization u(hssm, hss::ULVSchedule::kLevelSweep);
      (void)u;
    });
    const double fac_dag = best_seconds(reps, [&] {
      hss::ULVFactorization u(hssm, hss::ULVSchedule::kTaskDag);
      (void)u;
    });
    tsched.add_row({"ulv_factor", std::to_string(n),
                    util::Table::fmt(fac_sweep, 4),
                    util::Table::fmt(fac_dag, 4),
                    util::Table::fmt(
                        fac_dag > 0.0 ? fac_sweep / fac_dag : 0.0, 2)});
    jfactor_sched.push(
        util::Json::object()
            .set("n", static_cast<long>(n))
            .set("level_sweep_seconds", fac_sweep)
            .set("task_dag_seconds", fac_dag)
            .set("speedup", fac_dag > 0.0 ? fac_sweep / fac_dag : 0.0));
    const double mm_sweep = best_seconds(reps, [&] {
      la::Matrix y = hssm.matmat(xm, hss::SweepSchedule::kLevelSweep);
    });
    const double mm_dag = best_seconds(reps, [&] {
      la::Matrix y = hssm.matmat(xm, hss::SweepSchedule::kTaskDag);
    });
    tsched.add_row({"hss_matmat_" + std::to_string(nrhs), std::to_string(n),
                    util::Table::fmt(mm_sweep, 4), util::Table::fmt(mm_dag, 4),
                    util::Table::fmt(mm_dag > 0.0 ? mm_sweep / mm_dag : 0.0,
                                     2)});
    jmatmat_sched.push(
        util::Json::object()
            .set("n", static_cast<long>(n))
            .set("level_sweep_seconds", mm_sweep)
            .set("task_dag_seconds", mm_dag)
            .set("speedup", mm_dag > 0.0 ? mm_sweep / mm_dag : 0.0));

    // Level-parallel solve: single RHS and the multi-RHS block (the
    // one-vs-all shape), routed through the packed gemm core.
    hss::ULVFactorization ulv(hssm);
    la::Vector b(n, 1.0);
    la::Matrix bm(n, nrhs);
    rng.fill_normal(bm.data(), bm.size());
    const Pair s1 = timed_pair(reps, maxthreads,
                               [&] { la::Vector xs = ulv.solve(b); });
    add_row("ulv_solve_rhs1", n, s1);
    jsolve1.push(pair_json(n, s1));
    const Pair sk = timed_pair(reps, maxthreads,
                               [&] { la::Matrix xs = ulv.solve(bm); });
    add_row("ulv_solve_rhs" + std::to_string(nrhs), n, sk);
    {
      // Dedicated instrumented solve: forward/backward splits consistent
      // with their own total.
      la::Matrix xs = ulv.solve(bm);
      (void)xs;
      jsolvek.push(pair_json(n, sk)
                       .set("nrhs", static_cast<long>(nrhs))
                       .set("per_rhs_seconds", sk.parallel / nrhs)
                       .set("phase_total_seconds", ulv.stats().solve_seconds)
                       .set("forward_seconds",
                            ulv.stats().solve_forward_seconds)
                       .set("backward_seconds",
                            ulv.stats().solve_backward_seconds));
    }

    // The acceptance metric: one factorization plus one multi-RHS solve.
    Pair combined;
    combined.serial = fac.serial + sk.serial;
    combined.parallel = fac.parallel + sk.parallel;
    add_row("ulv_factor+solve", n, combined);
    jcombined.push(pair_json(n, combined));

    // HODLR + SMW comparator: task-parallel factor/solve recursion.
    util::set_threads(maxthreads);
    hodlr::HODLROptions hopts;
    hopts.rtol = c.rtol;
    hodlr::HODLRMatrix hm(*f.km, f.tree, hopts);
    const Pair smwf = timed_pair(reps, maxthreads, [&] {
      hodlr::SMWFactorization smw(hm);
    });
    add_row("smw_factor", n, smwf);
    jsmw_factor.push(pair_json(n, smwf));
    hodlr::SMWFactorization smw(hm);
    const Pair smws = timed_pair(reps, maxthreads, [&] {
      la::Matrix xs = smw.solve(bm);
    });
    add_row("smw_solve_rhs" + std::to_string(nrhs), n, smws);
    jsmw_solve.push(pair_json(n, smws));
  }
  util::set_threads(maxthreads);
  tg.print(std::cout, "hierarchical tier, 1 thread vs " +
                          std::to_string(maxthreads) + " (best of " +
                          std::to_string(reps) + ")");
  tsched.print(std::cout, "task-DAG vs level-sweep schedule at " +
                              std::to_string(maxthreads) + " threads");

  doc.set("hss_build", std::move(jbuild));
  doc.set("hss_matvec", std::move(jmatvec));
  doc.set("hss_matmat", std::move(jmatmat));
  doc.set("ulv_factor", std::move(jfactor));
  doc.set("ulv_solve_rhs1", std::move(jsolve1));
  doc.set("ulv_solve_multi", std::move(jsolvek));
  doc.set("ulv_factor_solve", std::move(jcombined));
  doc.set("ulv_factor_schedule", std::move(jfactor_sched));
  doc.set("hss_matmat_schedule", std::move(jmatmat_sched));
  doc.set("smw_factor", std::move(jsmw_factor));
  doc.set("smw_solve", std::move(jsmw_solve));
  const bool json_ok = bench::write_json_if_requested(c, doc);

  std::cout << "shape to check: ulv_factor+solve speedup >= 2.5x at n ~ 8192\n"
               "on a multi-core box (every level of the tree fans out over\n"
               "threads; the per-phase split shows the root LU and forward\n"
               "sweep shares).  On a 1-core host both columns time the same\n"
               "serial sweep and the column is ~1.0x by construction.\n";
  return json_ok ? 0 : 1;
}
