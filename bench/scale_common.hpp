#pragma once
// Shared harness of the scale tier (bench_scale, bench_table3_large_scale):
// one end-to-end fit+score run with per-phase timings, kernel-evaluation
// accounting and peak-RSS capture, plus the JSON row the BENCH_scale.json
// trajectory is built from.

#include "bench_common.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace khss::bench {

/// Knobs of one scale run on top of CommonArgs (which carries n, dataset,
/// seed, rtol, backend).
struct ScaleRunConfig {
  cluster::OrderingMethod ordering = cluster::OrderingMethod::kTwoMeans;
  int sieve = 0;          // OrderingOptions::sieve; 0 = full ordering
  int leaf_size = 16;     // paper default; the scale bench raises it
  long eval_budget = 0;   // KernelMatrix budget; 0 = unlimited
  double h = 1.0;
  double lambda = 1.0;
  double rtol = 1e-1;
  krr::SolverBackend backend = krr::SolverBackend::kHSSRandomH;
  std::uint64_t seed = 42;
  /// Canonical --kernel spec; empty = Gaussian at bandwidth `h`.
  std::string kernel_spec;
};

/// Canonical spec of the kernel a run will actually use: the --kernel
/// override, or the dataset-default Gaussian at cfg.h.
inline std::string resolved_kernel_spec(const ScaleRunConfig& cfg) {
  if (!cfg.kernel_spec.empty()) return cfg.kernel_spec;
  kernel::KernelParams p;
  p.h = cfg.h;
  return kernel::kernel_spec(p);
}

/// Phase times + footprint of one fit+score run.
struct ScaleRunResult {
  double accuracy = 0.0;
  double order_seconds = 0.0;
  double h_construction_seconds = 0.0;
  double compress_seconds = 0.0;  // includes sampling; H build broken out
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;
  double score_seconds = 0.0;
  long element_evals = 0;
  std::size_t peak_rss_bytes = 0;
  std::size_t compressed_memory_bytes = 0;
  int max_rank = 0;

  double fit_seconds() const {
    return order_seconds + compress_seconds + factor_seconds + solve_seconds;
  }
};

/// One binary-classification fit+score through the standard KRR path.  With
/// cfg.eval_budget > 0 the run THROWS kernel::EvalBudgetExceeded if any
/// stage falls back to a dense n×n path — the matrix-free audit is part of
/// the measurement, not a separate mode.
inline ScaleRunResult run_scale(const PreparedData& d,
                                const ScaleRunConfig& cfg) {
  krr::KRROptions opts;
  opts.ordering = cfg.ordering;
  opts.backend = cfg.backend;
  opts.kernel.h = cfg.h;
  if (!cfg.kernel_spec.empty()) {
    opts.kernel = kernel::parse_kernel_spec(cfg.kernel_spec);
  }
  opts.lambda = cfg.lambda;
  opts.hss_rtol = cfg.rtol;
  opts.leaf_size = cfg.leaf_size;
  opts.sieve = cfg.sieve;
  opts.eval_budget = cfg.eval_budget;
  opts.seed = cfg.seed;

  krr::KRRClassifier clf(opts);
  clf.fit(d.train.points, d.train.one_vs_all(d.info.target_class));

  ScaleRunResult r;
  {
    util::Timer score_timer;
    r.accuracy = clf.accuracy(d.test.points,
                              d.test.one_vs_all(d.info.target_class));
    r.score_seconds = score_timer.seconds();
  }
  const krr::KRRStats st = clf.model().stats();
  r.order_seconds = st.cluster_seconds;
  r.h_construction_seconds = st.h_construction_seconds;
  r.compress_seconds = st.compress_seconds;
  r.factor_seconds = st.factor_seconds;
  r.solve_seconds = st.solve_seconds;
  r.compressed_memory_bytes = st.compressed_memory_bytes;
  r.max_rank = st.max_rank;
  r.element_evals = clf.model().kernel().element_evals();
  r.peak_rss_bytes = util::peak_rss_bytes();
  return r;
}

/// One row of the BENCH_scale.json "rows" array.
inline util::Json scale_json_row(int n, const ScaleRunConfig& cfg,
                                 const ScaleRunResult& r) {
  util::Json row = util::Json::object();
  row.set("n", static_cast<long>(n));
  row.set("kernel", resolved_kernel_spec(cfg));
  row.set("ordering", cluster::ordering_name(cfg.ordering));
  row.set("sieve", static_cast<long>(cfg.sieve));
  row.set("leaf_size", static_cast<long>(cfg.leaf_size));
  row.set("order_seconds", r.order_seconds);
  row.set("h_construction_seconds", r.h_construction_seconds);
  row.set("compress_seconds", r.compress_seconds);
  row.set("factor_seconds", r.factor_seconds);
  row.set("solve_seconds", r.solve_seconds);
  row.set("score_seconds", r.score_seconds);
  row.set("fit_seconds", r.fit_seconds());
  row.set("accuracy", r.accuracy);
  row.set("element_evals", r.element_evals);
  row.set("eval_budget", cfg.eval_budget);
  row.set("max_rank", static_cast<long>(r.max_rank));
  row.set("compressed_memory_mb",
          static_cast<double>(r.compressed_memory_bytes) / (1024.0 * 1024.0));
  row.set("peak_rss_mb",
          static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0));
  return row;
}

/// The scale tier's default matrix-free budget for a given n: far above what
/// an H-sampled HSS fit plus scoring actually spends, strictly below the n²
/// a dense fallback would need.  Tiny n (where n²/4 could undercut honest
/// leaf-block work) gets no budget.
inline long default_eval_budget(int n) {
  if (n < 4096) return 0;
  return static_cast<long>(n) * n / 4;
}

}  // namespace khss::bench
