// Scale tier: end-to-end fit+score from toy n up to 10^6 on one box.
//
//   ./bench_scale [--sizes 10000,100000,1000000] [--dataset SUSY]
//                 [--ordering 2MN] [--sieve 8192] [--leaf 128]
//                 [--ntest 2000] [--backend hss-rand-h] [--kernel SPEC]
//                 [--json out.json]
//
// The paper trains on 0.5M-4.5M points; this harness proves the single-node
// pipeline covers that range: sieved clustering keeps the ordering O(n log n),
// the H-sampled randomized HSS construction keeps compression near-linear,
// and a KernelMatrix eval budget of n^2/4 makes the run FAIL (rather than
// quietly thrash) if any stage falls back to a dense n x n path.  Per-phase
// seconds (order/compress/factor/solve/score), kernel-evaluation counts and
// peak RSS land in the JSON rows — the committed BENCH_scale.json perf
// trajectory at the repo root.

#include "scale_common.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(
      args, {.n = 0, .backend = krr::SolverBackend::kHSSRandomH});
  const std::vector<int> sizes =
      bench::parse_sizes(args.get_string("sizes", "10000,100000"),
                         args.program());
  const int ntest = static_cast<int>(args.get_int("ntest", 2000));
  const int sieve = static_cast<int>(args.get_int("sieve", 8192));
  const int leaf = static_cast<int>(args.get_int("leaf", 128));
  const cluster::OrderingMethod ordering =
      cluster::ordering_from_name(args.get_string("ordering", "2MN"));

  bench::print_banner(
      "scale tier", "fit+score wall clock and memory vs n",
      "0.5M-4.5M Cori-scale training -> single-node sweep to 10^6 "
      "(sieved ordering + H sampling, matrix-free budget enforced)");

  const data::PaperDatasetInfo info = data::paper_dataset_info(c.dataset);

  util::Json doc = bench::json_header("scale", c);
  doc.set("ordering", cluster::ordering_name(ordering));
  doc.set("sieve", static_cast<long>(sieve));
  doc.set("leaf_size", static_cast<long>(leaf));
  doc.set("ntest", static_cast<long>(ntest));
  util::Json rows_json = util::Json::array();

  util::Table table({"n", "order (s)", "H build (s)", "compress (s)",
                     "factor (s)", "solve (s)", "score (s)", "fit (s)", "acc",
                     "evals/n^2", "rank", "mem (MB)", "peak RSS (MB)"});
  for (const int n : sizes) {
    bench::PreparedData d = bench::prepare(c.dataset, n, ntest, c.seed);

    bench::ScaleRunConfig cfg;
    cfg.ordering = ordering;
    cfg.sieve = sieve;
    cfg.leaf_size = leaf;
    cfg.eval_budget = bench::default_eval_budget(n);
    cfg.h = info.h;
    cfg.lambda = info.lambda;
    cfg.rtol = c.rtol;
    cfg.backend = c.backend;
    cfg.seed = c.seed;
    cfg.kernel_spec = c.kernel_spec;

    const bench::ScaleRunResult r = bench::run_scale(d, cfg);
    const double evals_frac = static_cast<double>(r.element_evals) /
                              (static_cast<double>(n) * n);
    table.add_row(
        {util::Table::fmt_int(n), util::Table::fmt(r.order_seconds, 2),
         util::Table::fmt(r.h_construction_seconds, 2),
         util::Table::fmt(r.compress_seconds, 2),
         util::Table::fmt(r.factor_seconds, 2),
         util::Table::fmt(r.solve_seconds, 2),
         util::Table::fmt(r.score_seconds, 2),
         util::Table::fmt(r.fit_seconds(), 2), util::Table::fmt_pct(r.accuracy),
         util::Table::fmt_sci(evals_frac),
         util::Table::fmt_int(r.max_rank),
         util::Table::fmt_mb(static_cast<double>(r.compressed_memory_bytes)),
         util::Table::fmt_mb(static_cast<double>(r.peak_rss_bytes))});
    rows_json.push(bench::scale_json_row(n, cfg, r));
  }
  doc.set("rows", rows_json);
  table.print(std::cout, "scale tier: per-phase fit+score trajectory");
  std::cout << "note: evals/n^2 << 1 plus the enforced n^2/4 eval budget is\n"
               "the matrix-free witness: no stage materialized or swept a\n"
               "dense n x n kernel.  Peak RSS is process-wide (includes\n"
               "earlier, larger sweep entries).\n";

  if (!bench::write_json_if_requested(c, doc)) return 1;
  return 0;
}
