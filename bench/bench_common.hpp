#pragma once
// Shared plumbing for the per-table/per-figure bench binaries.
//
// Every binary prints the rows/series of one table or figure from the paper
// (see DESIGN.md experiment index), runs standalone with single-node-sized
// defaults, and accepts the shared flags parsed by parse_common() below
// (--n / --dataset / --seed / --rtol / --backend / --batch / --threads /
// --kernel <spec> / --json <path>) plus its own.
// --kernel takes a kernel/kernel_spec.hpp string ("matern52:h=1.5",
// "sum(gaussian:h=1,dot:h=2)", ...) and overrides the bench's per-dataset
// Gaussian default, so every table can be re-run over the kernel zoo.
// --json makes the bench additionally write a structured result document
// (util::Json) to <path> — GFLOP/s, phase seconds, speedups — seeding the
// cross-PR perf trajectory (BENCH_*.json; CI uploads them as artifacts).
// --backend takes any name registered in the solver registry ("dense",
// "hss-rand-h", "hodlr-smw", "nystrom", ...), so each bench can sweep every
// pipeline through the same KRRModel path.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/ordering.hpp"
#include "data/dataset.hpp"
#include "data/datasets.hpp"
#include "kernel/kernel.hpp"
#include "kernel/kernel_spec.hpp"
#include "krr/krr.hpp"
#include "solver/solver.hpp"
#include "util/argparse.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"

namespace khss::bench {

/// Defaults a bench passes to parse_common(); each bench only overrides what
/// differs from the fleet-wide baseline.
struct BenchDefaults {
  int n = 2000;
  std::string dataset = "SUSY";
  krr::SolverBackend backend = krr::SolverBackend::kHSSRandomDense;
  double rtol = 1e-1;  // the paper's classification tolerance
  int batch = 64;      // serving mini-batch size (bench_serving)
};

/// The flags every bench shares.  Bench-specific flags stay in the caller.
struct CommonArgs {
  int n = 0;
  std::string dataset;
  std::uint64_t seed = 42;
  double rtol = 1e-1;
  krr::SolverBackend backend = krr::SolverBackend::kHSSRandomDense;
  int batch = 64;
  std::string json_path;  // empty = no structured output
  /// --kernel, canonicalized; empty = keep the bench's per-dataset default
  /// Gaussian bandwidth.  `kernel` holds the parsed params when set.
  std::string kernel_spec;
  kernel::KernelParams kernel;
};

/// Apply --threads (0 = leave the OpenMP default); shared by parse_common()
/// and the benches that manage thread counts themselves.
inline void apply_threads(const util::ArgParser& args) {
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) util::set_threads(threads);
}

/// Exit early when --backend names a pipeline that does not build an HSS
/// matrix (the Fig. 8 benches re-factor model.hss() directly).
inline void require_hss_backend(const std::string& program,
                                krr::SolverBackend backend) {
  if (solver::make(backend)->hss_matrix() == nullptr) {
    std::cerr << program << ": backend '" << solver::backend_name(backend)
              << "' does not build an HSS matrix; pick one of the hss-*"
              << " or pcg backends\n";
    std::exit(2);
  }
}

/// Warn when --backend was passed to a bench that assembles its pipeline by
/// hand (the flag would otherwise be silently ignored).
inline void warn_backend_ignored(const util::ArgParser& args,
                                 const std::string& what) {
  if (args.has("backend")) {
    std::cerr << args.program() << ": note: this bench " << what
              << "; --backend is ignored\n";
  }
}

/// Parse a comma-separated `--sizes` list ("128,256,512") for the micro
/// harnesses; prints a friendly error and exits(2) on anything that is not
/// a positive int (including out-of-range magnitudes).
inline std::vector<int> parse_sizes(const std::string& csv,
                                    const std::string& program) {
  std::vector<int> sizes;
  std::string cur;
  auto flush = [&] {
    if (cur.empty()) return;
    bool ok = true;
    for (const char d : cur) ok = ok && d >= '0' && d <= '9';
    int v = 0;
    if (ok) {
      try {
        v = std::stoi(cur);
      } catch (const std::out_of_range&) {
        ok = false;
      }
      ok = ok && v > 0;
    }
    if (!ok) {
      std::cerr << program << ": bad --sizes entry '" << cur
                << "' (positive integers, comma-separated)\n";
      std::exit(2);
    }
    sizes.push_back(v);
    cur.clear();
  };
  for (const char c : csv) {
    if (c == ',') {
      flush();
    } else {
      cur += c;
    }
  }
  flush();
  if (sizes.empty()) {
    std::cerr << program << ": --sizes is empty\n";
    std::exit(2);
  }
  return sizes;
}

inline CommonArgs parse_common(const util::ArgParser& args,
                               const BenchDefaults& def = {}) {
  CommonArgs c;
  c.n = static_cast<int>(args.get_int("n", def.n));
  c.dataset = args.get_string("dataset", def.dataset);
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  c.rtol = args.get_double("rtol", def.rtol);
  c.backend = solver::backend_from_name_cli(
      args.get_string("backend", solver::backend_name(def.backend)));
  c.batch = std::max(1, static_cast<int>(args.get_int("batch", def.batch)));
  c.json_path = args.get_string("json", "");
  const std::string spec = args.get_string("kernel", "");
  if (!spec.empty()) {
    try {
      c.kernel = kernel::parse_kernel_spec(spec);
      c.kernel_spec = kernel::kernel_spec(c.kernel);
    } catch (const std::invalid_argument& e) {
      std::cerr << args.program() << ": bad --kernel: " << e.what() << "\n";
      std::exit(2);
    }
  }
  apply_threads(args);
  return c;
}

/// Apply --kernel to a run's options; an empty spec keeps whatever the
/// caller already set (the per-dataset default bandwidth).
inline void apply_kernel(const CommonArgs& c, krr::KRROptions& opts) {
  if (!c.kernel_spec.empty()) opts.kernel = c.kernel;
}

/// Root document for a bench's --json output: identifies the binary and the
/// shared run configuration so trajectory files are self-describing.
inline util::Json json_header(const std::string& bench, const CommonArgs& c) {
  util::Json doc = util::Json::object();
  doc.set("bench", bench);
  doc.set("n", static_cast<long>(c.n));
  doc.set("dataset", c.dataset);
  doc.set("seed", static_cast<long>(c.seed));
  doc.set("threads", static_cast<long>(util::max_threads()));
  doc.set("backend", solver::backend_name(c.backend));
  if (!c.kernel_spec.empty()) doc.set("kernel", c.kernel_spec);
  return doc;
}

/// Write the document when --json was passed; prints where it went so CI
/// logs show the artifact path.  Returns true when no write was requested or
/// the write succeeded; FALSE on a failed write — benches must propagate
/// that as a non-zero exit so a perf-trajectory run cannot "pass" while its
/// BENCH_*.json artifact silently failed to land (the bug this fixes:
/// Json::save's bool was dropped here and every caller saw success).
[[nodiscard]] inline bool write_json_if_requested(const CommonArgs& c,
                                                  const util::Json& doc) {
  if (c.json_path.empty()) return true;
  if (doc.save(c.json_path)) {
    std::cout << "json written to " << c.json_path << "\n";
    return true;
  }
  std::cerr << "error: could not write json to " << c.json_path << "\n";
  return false;
}

/// Train/test split of a paper-twin dataset, z-score normalized on train.
struct PreparedData {
  data::Dataset train;
  data::Dataset test;
  data::PaperDatasetInfo info;
};

inline PreparedData prepare(const std::string& name, int n_train, int n_test,
                            std::uint64_t seed) {
  PreparedData out;
  out.info = data::paper_dataset_info(name);
  data::Dataset full = data::make_paper_dataset(name, n_train + n_test, seed);
  util::Rng rng(seed + 1);
  data::Split split = data::split_and_normalize(
      full, static_cast<double>(n_train) / full.n(), 0.0,
      static_cast<double>(n_test) / full.n(), rng);
  out.train = std::move(split.train);
  out.test = std::move(split.test);
  return out;
}

/// One KRR run; returns (accuracy, stats).
struct RunResult {
  double accuracy = 0.0;
  krr::KRRStats stats;
};

inline RunResult run_krr(const PreparedData& d, cluster::OrderingMethod m,
                         krr::SolverBackend backend, double rtol = 1e-1) {
  krr::KRROptions opts;
  opts.ordering = m;
  opts.backend = backend;
  opts.kernel.h = d.info.h;
  opts.lambda = d.info.lambda;
  opts.hss_rtol = rtol;

  krr::KRRClassifier clf(opts);
  clf.fit(d.train.points, d.train.one_vs_all(d.info.target_class));
  RunResult r;
  r.accuracy = clf.accuracy(d.test.points,
                            d.test.one_vs_all(d.info.target_class));
  r.stats = clf.model().stats();
  return r;
}

inline const std::vector<cluster::OrderingMethod>& paper_orderings() {
  static const std::vector<cluster::OrderingMethod> kMethods = {
      cluster::OrderingMethod::kNatural, cluster::OrderingMethod::kKD,
      cluster::OrderingMethod::kPCA, cluster::OrderingMethod::kTwoMeans};
  return kMethods;
}

inline void print_banner(const std::string& id, const std::string& what,
                         const std::string& substitution) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << id << ": " << what << "\n";
  if (!substitution.empty()) {
    std::cout << "substitution: " << substitution << "\n";
  }
  std::cout << "==============================================================\n";
}

}  // namespace khss::bench
