#pragma once
// Shared plumbing for the per-table/per-figure bench binaries.
//
// Every binary prints the rows/series of one table or figure from the paper
// (see DESIGN.md experiment index), runs standalone with single-node-sized
// defaults, and accepts --n / --threads / --seed overrides.

#include <iostream>
#include <string>
#include <vector>

#include "cluster/ordering.hpp"
#include "data/dataset.hpp"
#include "data/datasets.hpp"
#include "kernel/kernel.hpp"
#include "krr/krr.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"

namespace khss::bench {

/// Train/test split of a paper-twin dataset, z-score normalized on train.
struct PreparedData {
  data::Dataset train;
  data::Dataset test;
  data::PaperDatasetInfo info;
};

inline PreparedData prepare(const std::string& name, int n_train, int n_test,
                            std::uint64_t seed) {
  PreparedData out;
  out.info = data::paper_dataset_info(name);
  data::Dataset full = data::make_paper_dataset(name, n_train + n_test, seed);
  util::Rng rng(seed + 1);
  data::Split split = data::split_and_normalize(
      full, static_cast<double>(n_train) / full.n(), 0.0,
      static_cast<double>(n_test) / full.n(), rng);
  out.train = std::move(split.train);
  out.test = std::move(split.test);
  return out;
}

/// One KRR run; returns (accuracy, stats).
struct RunResult {
  double accuracy = 0.0;
  krr::KRRStats stats;
};

inline RunResult run_krr(const PreparedData& d, cluster::OrderingMethod m,
                         krr::SolverBackend backend, double rtol = 1e-1) {
  krr::KRROptions opts;
  opts.ordering = m;
  opts.backend = backend;
  opts.kernel.h = d.info.h;
  opts.lambda = d.info.lambda;
  opts.hss_rtol = rtol;

  krr::KRRClassifier clf(opts);
  clf.fit(d.train.points, d.train.one_vs_all(d.info.target_class));
  RunResult r;
  r.accuracy = clf.accuracy(d.test.points,
                            d.test.one_vs_all(d.info.target_class));
  r.stats = clf.model().stats();
  return r;
}

inline const std::vector<cluster::OrderingMethod>& paper_orderings() {
  static const std::vector<cluster::OrderingMethod> kMethods = {
      cluster::OrderingMethod::kNatural, cluster::OrderingMethod::kKD,
      cluster::OrderingMethod::kPCA, cluster::OrderingMethod::kTwoMeans};
  return kMethods;
}

inline void print_banner(const std::string& id, const std::string& what,
                         const std::string& substitution) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << id << ": " << what << "\n";
  if (!substitution.empty()) {
    std::cout << "substitution: " << substitution << "\n";
  }
  std::cout << "==============================================================\n";
}

}  // namespace khss::bench
