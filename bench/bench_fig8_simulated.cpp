// Fig. 8 (simulated distributed memory): strong scaling of the ULV
// factorization on 2^5 .. 2^10 simulated MPI ranks — the paper's actual
// core-count axis, which the 1-core container cannot sweep natively (see
// bench_fig8_scaling for the native OpenMP sweep and DESIGN.md for the
// substitution rationale).
//
//   ./bench_fig8_simulated [--n 4000] [--maxcores 1024]
//
// The simulation consumes the *real* factorization tree (per-node reduced
// sizes and ranks from an actual HSS compression of each dataset twin) and
// plays it over an alpha-beta machine model; see src/simulate/scaling.hpp.

#include "bench_common.hpp"
#include "simulate/scaling.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs ca = bench::parse_common(
      args, {.n = 4000, .backend = krr::SolverBackend::kHSSRandomH});
  bench::require_hss_backend(args.program(), ca.backend);
  const int maxcores = static_cast<int>(args.get_int("maxcores", 1024));
  const int n = ca.n;
  const std::uint64_t seed = ca.seed;

  bench::print_banner(
      "Fig. 8 (simulated)",
      "strong scaling of the factorization, 2^5..2^10 ranks",
      "1,024 Cori cores -> simulated alpha-beta machine driven by the real "
      "factorization tree");

  const std::vector<std::string> names = {"MNIST", "COVTYPE", "HEPMASS",
                                          "SUSY"};
  std::vector<int> cores;
  for (int c = 32; c <= maxcores; c *= 2) cores.push_back(c);

  util::Table table([&] {
    std::vector<std::string> hdr{"dataset (d)"};
    hdr.push_back("serial (s)");
    for (int c : cores) hdr.push_back("p=" + std::to_string(c));
    hdr.push_back("speedup@" + std::to_string(cores.back()));
    return hdr;
  }());

  for (const auto& name : names) {
    bench::PreparedData d = bench::prepare(name, n, 100, seed);

    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = ca.backend;  // must build an HSS matrix (model.hss())
    opts.kernel.h = d.info.h;
    opts.lambda = d.info.lambda;
    opts.hss_rtol = ca.rtol;
    krr::KRRModel model(opts);
    model.fit(d.train.points);

    simulate::MachineModel machine;
    const auto serial =
        simulate::simulate_ulv_factorization(model.hss(), 1, machine);

    std::vector<std::string> row{name + " (" + std::to_string(d.info.dim) +
                                 ")"};
    row.push_back(util::Table::fmt_sci(serial.total_seconds));
    double last = serial.total_seconds;
    for (int c : cores) {
      const auto sim =
          simulate::simulate_ulv_factorization(model.hss(), c, machine);
      row.push_back(util::Table::fmt_sci(sim.total_seconds));
      last = sim.total_seconds;
    }
    row.push_back(
        util::Table::fmt(serial.total_seconds / std::max(last, 1e-30), 1) +
        "x");
    table.add_row(std::move(row));
  }

  table.print(std::cout,
              "Fig. 8 (simulated): factorization time vs simulated ranks, "
              "n=" + std::to_string(n));
  std::cout << "shape to check vs the paper: near-linear decrease over the\n"
               "first doublings, flattening at high rank counts where the\n"
               "top-of-tree serialization and message latency dominate; the\n"
               "high-dimensional dataset (MNIST twin) costs the most at\n"
               "equal N because its ranks are largest.\n";
  return 0;
}
