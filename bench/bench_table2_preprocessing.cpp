// Table 2: HSS memory under the four preprocessing methods + test accuracy,
// for all seven datasets.
//
//   ./bench_table2_preprocessing [--n 2000] [--ntest 500] [--datasets GAS,...]
//
// The paper uses 10K train / 1K test on Cori; the default here is scaled to
// a single node (override with --n 10000 --ntest 1000 to match).  Memory
// ratios between orderings — the paper's actual finding — are size-stable.

#include <sstream>

#include "bench_common.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(args, {.n = 2000});
  const int n = c.n;
  const int ntest = static_cast<int>(args.get_int("ntest", 500));

  std::vector<std::string> names;
  {
    std::stringstream ss(args.get_string(
        "datasets", "SUSY,LETTER,PEN,HEPMASS,COVTYPE,GAS,MNIST"));
    std::string item;
    while (std::getline(ss, item, ',')) names.push_back(item);
  }

  bench::print_banner(
      "Table 2",
      "memory (MB) per preprocessing method + accuracy, 7 datasets",
      "UCI datasets -> synthetic twins; train " + std::to_string(n) +
          " (paper: 10K), test " + std::to_string(ntest) + " (paper: 1K)");

  util::Table table({"dataset (dim)", "h", "lambda", "NP", "KD", "PCA", "2MN",
                     "NP/2MN", "acc (2MN)", "paper acc"});
  for (const auto& name : names) {
    bench::PreparedData d = bench::prepare(name, n, ntest, c.seed);

    std::vector<std::string> row;
    row.push_back(name + " (" + std::to_string(d.info.dim) + ")");
    row.push_back(util::Table::fmt(d.info.h, 2));
    row.push_back(util::Table::fmt(d.info.lambda, 2));

    double mem_np = 0.0, mem_2mn = 0.0, acc_2mn = 0.0;
    for (auto method : bench::paper_orderings()) {
      bench::RunResult r = bench::run_krr(d, method, c.backend, c.rtol);
      const double mb = static_cast<double>(r.stats.compressed_memory_bytes);
      row.push_back(util::Table::fmt_mb(mb));
      if (method == cluster::OrderingMethod::kNatural) mem_np = mb;
      if (method == cluster::OrderingMethod::kTwoMeans) {
        mem_2mn = mb;
        acc_2mn = r.accuracy;
      }
    }
    row.push_back(util::Table::fmt(mem_np / mem_2mn, 2) + "x");
    row.push_back(util::Table::fmt_pct(acc_2mn));
    row.push_back(util::Table::fmt(d.info.paper_accuracy, 1) + "%");
    table.add_row(std::move(row));
  }
  table.print(std::cout, "Table 2: HSS memory (MB) by preprocessing method");
  std::cout << "shape to check vs the paper: 2MN <= PCA <= KD <= NP on the\n"
               "clustered sets (GAS, COVTYPE, LETTER, PEN), milder gains on\n"
               "SUSY/HEPMASS, and compressed accuracy matching the paper's\n"
               "exact-kernel accuracy column.\n";
  return 0;
}
