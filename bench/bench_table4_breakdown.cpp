// Table 4: timing breakdown of the algorithmic phases — H construction,
// HSS construction (sampling vs other), ULV factorization, solve — for the
// SUSY and COVTYPE datasets at two parallelism levels.
//
//   ./bench_table4_breakdown [--n 8000] [--low 1] [--high 0(=max)]
//
// Paper context: 32 vs 512 Cori cores; here "cores" are OpenMP threads
// (DESIGN.md substitution #3).

#include <array>

#include "bench_common.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(
      args, {.n = 8000, .backend = krr::SolverBackend::kHSSRandomH});
  const int n = c.n;
  const int low = static_cast<int>(args.get_int("low", 1));
  int high = static_cast<int>(args.get_int("high", 0));
  if (high <= 0) high = util::hardware_threads();

  bench::print_banner(
      "Table 4", "phase timing breakdown, SUSY and COVTYPE",
      "32 vs 512 MPI cores on Cori -> " + std::to_string(low) + " vs " +
          std::to_string(high) + " OpenMP threads, n=" + std::to_string(n));

  util::Table table({"phase", "SUSY t=" + std::to_string(low),
                     "SUSY t=" + std::to_string(high),
                     "COVTYPE t=" + std::to_string(low),
                     "COVTYPE t=" + std::to_string(high)});

  // rows[phase][column]
  constexpr int kPhases = 10;
  std::vector<std::array<double, 4>> cells(kPhases);
  int col = 0;
  for (const std::string name : {"SUSY", "COVTYPE"}) {
    bench::PreparedData d = bench::prepare(name, n, 200, c.seed);
    for (int threads : {low, high}) {
      util::set_threads(threads);
      bench::RunResult r = bench::run_krr(
          d, cluster::OrderingMethod::kTwoMeans, c.backend, c.rtol);
      cells[0][col] = r.stats.h_construction_seconds;
      cells[1][col] = r.stats.compress_seconds;
      cells[2][col] = r.stats.sampling_seconds;
      cells[3][col] = r.stats.compress_seconds -
                      r.stats.sampling_seconds;
      cells[4][col] = r.stats.factor_seconds;
      cells[5][col] = r.stats.factor_tree_seconds;
      cells[6][col] = r.stats.factor_root_seconds;
      cells[7][col] = r.stats.solve_seconds;
      cells[8][col] = r.stats.solve_forward_seconds;
      cells[9][col] = r.stats.solve_backward_seconds;
      ++col;
    }
  }
  util::set_threads(util::hardware_threads());

  const char* phase_names[kPhases] = {
      "H construction", "HSS construction", "--> Sampling", "--> Other",
      "Factorization",  "--> ULV sweep",    "--> Root LU",  "Solve",
      "--> Forward",    "--> Backward"};
  for (int p = 0; p < kPhases; ++p) {
    table.add_row({phase_names[p], util::Table::fmt(cells[p][0], 3),
                   util::Table::fmt(cells[p][1], 3),
                   util::Table::fmt(cells[p][2], 3),
                   util::Table::fmt(cells[p][3], 3)});
  }
  table.print(std::cout, "Table 4: timing (seconds)");

  bool json_ok = true;
  if (!c.json_path.empty()) {
    util::Json doc = bench::json_header("bench_table4_breakdown", c);
    doc.set("threads_low", static_cast<long>(low));
    doc.set("threads_high", static_cast<long>(high));
    util::Json runs = util::Json::array();
    const char* run_names[4] = {"SUSY_low", "SUSY_high", "COVTYPE_low",
                                "COVTYPE_high"};
    for (int col2 = 0; col2 < 4; ++col2) {
      util::Json run = util::Json::object();
      run.set("run", run_names[col2]);
      for (int p = 0; p < kPhases; ++p) run.set(phase_names[p], cells[p][col2]);
      runs.push(std::move(run));
    }
    doc.set("phase_seconds", std::move(runs));
    json_ok = bench::write_json_if_requested(c, doc);
  }
  std::cout << "shape to check vs the paper: HSS construction dominated by\n"
               "sampling; factorization and solve orders of magnitude\n"
               "cheaper; every phase speeds up with more parallelism, solve\n"
               "least (it is latency-bound at small per-core work).\n";
  return json_ok ? 0 : 1;
}
