// Ablation: ULV (this paper / STRUMPACK) vs Sherman-Morrison-Woodbury on
// HODLR (the INV-ASKIT approach the paper contrasts itself with,
// Section 1.2 item 2), plus any other registered backend for context.
//
//   ./bench_ablation_ulv_vs_smw [--n 4000] [--dataset GAS] [--rtol 1e-2]
//                               [--backends hss-rand-dense,hodlr-smw,nystrom]
//                               [--backend <one>]
//
// Every pipeline runs through the *same* KRRModel path (cluster tree,
// permuted kernel, solver registry) — the apples-to-apples comparison the
// paper's Section 1.2 discussion calls for.  Rows show compression time and
// memory, max off-diagonal rank, factor/solve time and the residual of the
// solved weights in each backend's own operator.

#include <sstream>

#include "bench_common.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(
      args, {.n = 4000, .dataset = "GAS", .rtol = 1e-2});

  // --backend runs a single pipeline; --backends takes a comma list.
  std::vector<krr::SolverBackend> backends;
  if (args.has("backend")) {
    backends.push_back(c.backend);
  } else {
    std::stringstream ss(args.get_string(
        "backends", "hss-rand-dense,hodlr-smw,nystrom"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      backends.push_back(solver::backend_from_name_cli(tok));
    }
  }

  bench::print_banner(
      "Ablation (Sec. 1.2)",
      "ULV on HSS vs Sherman-Morrison-Woodbury on HODLR",
      "INV-ASKIT comparator as a first-class backend (solver::make)");

  bench::PreparedData d = bench::prepare(c.dataset, c.n, 100, c.seed);

  util::Rng rng(c.seed);
  la::Vector b(d.train.n());
  for (auto& v : b) v = rng.normal();

  util::Table table({"backend", "compress (s)", "memory (MB)", "max rank",
                     "factor (s)", "solve (s)", "residual vs operator"});

  for (krr::SolverBackend backend : backends) {
    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = backend;
    opts.kernel.h = d.info.h;
    opts.lambda = d.info.lambda;
    opts.hss_rtol = c.rtol;
    opts.seed = c.seed;

    krr::KRRModel model(opts);
    model.fit(d.train.points);
    la::Vector x = model.solve(b);
    const double res = model.training_residual(x, b);

    const auto& st = model.stats();
    table.add_row({krr::backend_name(backend),
                   util::Table::fmt(st.compress_seconds),
                   util::Table::fmt_mb(
                       static_cast<double>(st.compressed_memory_bytes)),
                   util::Table::fmt_int(st.max_rank),
                   util::Table::fmt(st.factor_seconds),
                   util::Table::fmt(st.solve_seconds, 4),
                   util::Table::fmt_sci(res)});
  }

  table.print(std::cout, c.dataset + " twin, n=" +
                             std::to_string(d.train.n()) +
                             ", tol=" + util::Table::fmt_sci(c.rtol, 0));
  std::cout << "expectations: both hierarchical pipelines invert their\n"
               "compressed operator to ~machine precision and stay far below\n"
               "dense cost.  HODLR's independent bases are cheaper to build\n"
               "at small n; the HSS nested bases pay off asymptotically\n"
               "(O(rn) memory vs O(rn log n)) — sweep --n to see the gap\n"
               "close and reverse.  Nystrom's residual is measured against\n"
               "the exact operator, so it reports the global low-rank\n"
               "approximation error, not an algebraic solve failure.\n";
  return 0;
}
