// Ablation: ULV (this paper / STRUMPACK) vs Sherman-Morrison-Woodbury on
// HODLR (the INV-ASKIT approach the paper contrasts itself with,
// Section 1.2 item 2).
//
//   ./bench_ablation_ulv_vs_smw [--n 4000] [--dataset GAS]
//
// Both solvers consume the same cluster tree and element accessor; rows show
// compression memory, factor time, solve time and the residual against the
// dense operator reconstruction.

#include <cmath>

#include "bench_common.hpp"
#include "hodlr/hodlr.hpp"
#include "hss/build.hpp"
#include "hss/ulv.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 4000));
  const std::string name = args.get_string("dataset", "GAS");
  const double rtol = args.get_double("rtol", 1e-2);
  const std::uint64_t seed = args.get_int("seed", 42);
  if (args.get_int("threads", 0) > 0) {
    util::set_threads(static_cast<int>(args.get_int("threads", 0)));
  }

  bench::print_banner(
      "Ablation (Sec. 1.2)",
      "ULV on HSS vs Sherman-Morrison-Woodbury on HODLR",
      "INV-ASKIT comparator implemented in-repo (hodlr::SMWFactorization)");

  bench::PreparedData d = bench::prepare(name, n, 100, seed);

  cluster::OrderingOptions copts;
  copts.leaf_size = 16;
  cluster::ClusterTree tree = cluster::build_cluster_tree(
      d.train.points, cluster::OrderingMethod::kTwoMeans, copts);
  la::Matrix permuted =
      cluster::apply_row_permutation(d.train.points, tree.perm());
  kernel::KernelMatrix km(
      std::move(permuted),
      {kernel::KernelType::kGaussian, d.info.h, 2, 1.0}, d.info.lambda);

  util::Rng rng(seed);
  la::Vector b(d.train.n());
  for (auto& v : b) v = rng.normal();

  util::Table table({"pipeline", "compress (s)", "memory (MB)", "max rank",
                     "factor (s)", "solve (s)", "residual vs operator"});

  // --- HSS + ULV ---------------------------------------------------------
  {
    hss::ExtractFn extract = [&](const std::vector<int>& r,
                                 const std::vector<int>& c) {
      return km.extract(r, c);
    };
    hss::SampleFn sample = [&](const la::Matrix& r) { return km.multiply(r); };
    hss::HSSOptions opts;
    opts.rtol = rtol;
    util::Timer tc;
    hss::HSSMatrix hssm =
        hss::build_hss_randomized(tree, extract, sample, {}, opts);
    const double compress_s = tc.seconds();
    util::Timer tf;
    hss::ULVFactorization ulv(hssm);
    const double factor_s = tf.seconds();
    util::Timer ts;
    la::Vector x = ulv.solve(b);
    const double solve_s = ts.seconds();
    const double res = ulv.relative_residual(x, b);
    table.add_row({"HSS + ULV (this paper)", util::Table::fmt(compress_s),
                   util::Table::fmt_mb(
                       static_cast<double>(hssm.memory_bytes())),
                   util::Table::fmt_int(hssm.max_rank()),
                   util::Table::fmt(factor_s), util::Table::fmt(solve_s, 4),
                   util::Table::fmt_sci(res)});
  }

  // --- HODLR + SMW ---------------------------------------------------------
  {
    hodlr::HODLROptions opts;
    opts.rtol = rtol;
    util::Timer tc;
    hodlr::HODLRMatrix hm(km, tree, opts);
    const double compress_s = tc.seconds();
    util::Timer tf;
    hodlr::SMWFactorization smw(hm);
    const double factor_s = tf.seconds();
    util::Timer ts;
    la::Vector x = smw.solve(b);
    const double solve_s = ts.seconds();
    la::Vector ax = hm.matvec(x);
    double num = 0.0, den = 0.0;
    for (int i = 0; i < d.train.n(); ++i) {
      num += (ax[i] - b[i]) * (ax[i] - b[i]);
      den += b[i] * b[i];
    }
    table.add_row({"HODLR + SMW (INV-ASKIT style)",
                   util::Table::fmt(compress_s),
                   util::Table::fmt_mb(
                       static_cast<double>(hm.stats().memory_bytes)),
                   util::Table::fmt_int(hm.stats().max_rank),
                   util::Table::fmt(factor_s), util::Table::fmt(solve_s, 4),
                   util::Table::fmt_sci(std::sqrt(num / den))});
  }

  table.print(std::cout, name + " twin, n=" + std::to_string(d.train.n()) +
                             ", tol=" + util::Table::fmt_sci(rtol, 0));
  std::cout << "expectations: both pipelines invert their compressed operator\n"
               "to ~machine precision and stay far below dense cost.  HODLR's\n"
               "independent bases are cheaper to build at small n; the HSS\n"
               "nested bases pay off asymptotically (O(rn) memory vs\n"
               "O(rn log n)) — sweep --n to see the gap close and reverse.\n";
  return 0;
}
