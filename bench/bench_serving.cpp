// Serving-path benchmark: batched multiclass prediction throughput and
// per-batch latency vs the per-point baseline.
//
//   ./bench_serving [--n 2000] [--ntest 1000] [--batch B]
//                   [--backends dense,nystrom] [--dataset PEN] [--threads T]
//                   [--kernel SPEC]
//
// Socket mode (daemon benchmark): with --serve SOCKET the bench skips
// training entirely and drives a running khss_serve daemon over its AF_UNIX
// socket with concurrent OPEN-LOOP clients:
//
//   ./bench_serving --serve /tmp/khss.sock [--model NAME] [--clients 4]
//                   [--rate 50] [--duration 5] [--batch 16]
//
// Each client issues --batch-row score requests on a fixed schedule of
// --rate requests/second; latency is measured from the SCHEDULED send time
// to the response (so a backed-up daemon cannot hide queueing delay —
// no coordinated omission).  Reports p50/p99 latency and achieved
// throughput, plus the daemon's own per-model serving stats delta.
//
// Trains one-vs-all KRR on the PEN digits twin (10 classes) per backend,
// then serves the test set two ways:
//   per-point: one cross_times_vector sweep per test point per class — the
//              pre-serving-layer hot path, num_classes kernel sweeps/point;
//   batched:   predict::BatchPredictor mini-batches — ONE blocked kernel
//              sweep scores every class (DESIGN.md "Serving path").
// Reports points/sec, speedup over per-point, and p50/p99 per-batch latency
// across batch sizes (or just --batch when given) and backends.  The
// acceptance bar for the digits example is >= 3x multiclass throughput on
// the dense backend; the batched path removes the factor-num_classes sweep
// redundancy, so the expected win is ~num_classes x cache effects.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "predict/batch_predictor.hpp"
#include "serve/client.hpp"
#include "util/timer.hpp"

using namespace khss;

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * (v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - lo;
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

// The per-point baseline: stream test points one at a time, one
// cross-kernel sweep per class per point (the historical serving path:
// permute the weight vector, then KernelMatrix::cross_times_vector).
double per_point_seconds(const krr::OneVsAllKRR& clf, const la::Matrix& test,
                         int max_points) {
  const int m = std::min(test.rows(), max_points);
  const int classes = clf.weights().cols();
  const int n = clf.weights().rows();
  const std::vector<int>& perm = clf.model().tree().perm();
  util::Timer t;
  for (int c = 0; c < classes; ++c) {
    // Permute once per class (as the pre-serving path did), then one
    // cross-kernel sweep per point.
    la::Vector wp(n);
    for (int j = 0; j < n; ++j) wp[j] = clf.weights()(perm[j], c);
    for (int i = 0; i < m; ++i) {
      la::Matrix row = test.block(i, 0, 1, test.cols());
      (void)clf.model().kernel().cross_times_vector(row, wp);
    }
  }
  const double s = t.seconds();
  // Scale to the full test set so throughputs are comparable.
  return s * static_cast<double>(test.rows()) / std::max(1, m);
}

struct BatchResult {
  double points_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

BatchResult serve_batched(const predict::BatchPredictor& pred,
                          const la::Matrix& test, int batch, int min_batches) {
  const int m = test.rows();
  std::vector<double> latencies;
  la::Matrix scores;
  long served = 0;
  util::Timer total;
  while (static_cast<int>(latencies.size()) < min_batches) {
    for (int ib = 0; ib < m; ib += batch) {
      const int bi = std::min(batch, m - ib);
      la::Matrix chunk = test.block(ib, 0, bi, test.cols());
      util::Timer t;
      pred.predict_batch(chunk, scores);
      latencies.push_back(t.seconds());
      served += bi;
    }
  }
  BatchResult r;
  r.points_per_sec = served / total.seconds();
  r.p50_ms = 1e3 * percentile(latencies, 0.50);
  r.p99_ms = 1e3 * percentile(latencies, 0.99);
  return r;
}

// ------------------------------------------------------------- socket mode

/// Drive a running khss_serve daemon with `clients` open-loop threads, each
/// sending `batch`-row score requests at `rate` req/s for `duration` s.
int run_socket_bench(const util::ArgParser& args, const std::string& sock) {
  const int clients = static_cast<int>(args.get_int("clients", 4));
  const double rate = args.get_double("rate", 50.0);
  const double duration = args.get_double("duration", 5.0);
  const int batch = static_cast<int>(args.get_int("batch", 16));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (clients < 1 || rate <= 0.0 || duration <= 0.0 || batch < 1) {
    std::cerr << "bench_serving: --clients/--rate/--duration/--batch must "
                 "be positive\n";
    return 2;
  }

  // Probe the daemon for the model to drive.
  serve::ServeClient probe(sock);
  const std::vector<serve::ModelDescription> models = probe.list_models();
  if (models.empty()) {
    std::cerr << "bench_serving: daemon at " << sock << " has no models\n";
    return 1;
  }
  std::string model = args.get_string("model", models.front().name);
  int dim = -1;
  for (const serve::ModelDescription& d : models) {
    if (d.name == model) dim = d.dim;
  }
  if (dim < 0) {
    std::cerr << "bench_serving: daemon does not serve model '" << model
              << "'\n";
    return 1;
  }
  const auto stats_before = probe.stats();

  bench::print_banner(
      "serving daemon", "open-loop latency against khss_serve",
      "latency measured from SCHEDULED send (no coordinated omission)");
  std::cout << "socket " << sock << ", model '" << model << "' (dim " << dim
            << "), " << clients << " clients x " << rate << " req/s x "
            << batch << " rows, " << duration << " s\n";

  using clock = std::chrono::steady_clock;
  std::mutex merge_mutex;
  std::vector<double> latencies;  // seconds, all clients
  std::vector<long> sent_per_client(clients, 0);
  std::vector<std::thread> threads;
  const auto t_start = clock::now();
  const auto t_end = t_start + std::chrono::duration_cast<clock::duration>(
                                   std::chrono::duration<double>(duration));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ServeClient client(sock);
      util::Rng rng(seed + static_cast<std::uint64_t>(c) + 1);
      la::Matrix points(batch, dim);
      rng.fill_normal(points.data(), points.size());
      std::vector<double> mine;
      long k = 0;
      while (true) {
        const auto scheduled =
            t_start + std::chrono::duration_cast<clock::duration>(
                          std::chrono::duration<double>(k / rate));
        if (scheduled >= t_end) break;
        std::this_thread::sleep_until(scheduled);  // no-op when behind
        (void)client.score(model, points);
        // Open-loop latency: completion minus the time the request was
        // SUPPOSED to go out, so schedule slippage counts against p99.
        mine.push_back(
            std::chrono::duration<double>(clock::now() - scheduled).count());
        ++k;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
      sent_per_client[c] = k;
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall = std::chrono::duration<double>(clock::now() - t_start)
                          .count();

  long total_requests = 0;
  for (long s : sent_per_client) total_requests += s;
  util::Table table({"clients", "req/s target", "req/s achieved", "points/s",
                     "p50 ms", "p99 ms", "max ms"});
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  table.add_row(
      {util::Table::fmt_int(clients), util::Table::fmt(rate * clients, 1),
       util::Table::fmt(total_requests / wall, 1),
       util::Table::fmt(total_requests * static_cast<double>(batch) / wall,
                        0),
       util::Table::fmt(1e3 * percentile(latencies, 0.50), 3),
       util::Table::fmt(1e3 * percentile(latencies, 0.99), 3),
       util::Table::fmt(sorted.empty() ? 0.0 : 1e3 * sorted.back(), 3)});
  table.print(std::cout, "open-loop serving latency");

  const auto stats_after = probe.stats();
  for (const auto& [name, after] : stats_after) {
    if (name != model) continue;
    for (const auto& [before_name, before] : stats_before) {
      if (before_name != name) continue;
      const std::uint64_t reqs = after.requests - before.requests;
      const std::uint64_t batches = after.batches - before.batches;
      std::cout << "daemon stats delta: " << reqs << " requests coalesced "
                << "into " << batches << " predict calls ("
                << util::Table::fmt(
                       batches > 0 ? static_cast<double>(reqs) /
                                         static_cast<double>(batches)
                                   : 0.0,
                       2)
                << " req/batch), "
                << util::Table::fmt(after.busy_seconds - before.busy_seconds,
                                    3)
                << " s busy\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);

  // Socket mode drives an external khss_serve daemon; no training here.
  const std::string serve_sock = args.get_string("serve", "");
  if (!serve_sock.empty()) {
    try {
      return run_socket_bench(args, serve_sock);
    } catch (const std::exception& e) {
      std::cerr << "bench_serving: " << e.what() << "\n";
      return 1;
    }
  }

  bench::BenchDefaults def;
  def.dataset = "PEN";  // the 10-class digits twin
  def.backend = krr::SolverBackend::kDenseExact;
  bench::CommonArgs c = bench::parse_common(args, def);
  const int ntest = static_cast<int>(args.get_int("ntest", 1000));
  const int min_batches = static_cast<int>(args.get_int("min-batches", 50));
  const int baseline_cap =
      static_cast<int>(args.get_int("baseline-points", 200));

  std::vector<krr::SolverBackend> backends;
  {
    std::string list = args.get_string(
        "backends", solver::backend_name(c.backend) + ",nystrom");
    if (args.has("backend") && !args.has("backends")) {
      list = solver::backend_name(c.backend);
    }
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string name = list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!name.empty()) {
        backends.push_back(solver::backend_from_name_cli(name));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  std::vector<int> batch_sizes;
  if (args.has("batch")) {
    batch_sizes = {c.batch};
  } else {
    for (int b : {1, 8, 64, 256}) {
      if (b < ntest) batch_sizes.push_back(b);
    }
    batch_sizes.push_back(ntest);  // one-shot full batch
  }

  bench::print_banner(
      "serving path", "batched multiclass prediction throughput/latency",
      "per-point baseline = cross_times_vector per point per class");

  bench::PreparedData d = bench::prepare(c.dataset, c.n, ntest, c.seed);
  std::cout << c.dataset << " twin, " << d.train.n() << " train / "
            << d.test.n() << " test, " << d.info.num_classes << " classes\n";

  for (krr::SolverBackend backend : backends) {
    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = backend;
    opts.kernel.h = d.info.h;
    opts.lambda = d.info.lambda;
    opts.hss_rtol = c.rtol;
    opts.seed = c.seed;
    bench::apply_kernel(c, opts);

    krr::OneVsAllKRR clf(opts);
    util::Timer fit_t;
    clf.fit(d.train.points, d.train.labels, d.info.num_classes);
    const double fit_s = fit_t.seconds();
    const double acc = clf.accuracy(d.test.points, d.test.labels);

    const double base_s =
        per_point_seconds(clf, d.test.points, baseline_cap);
    const double base_pps = d.test.n() / base_s;

    util::Table table({"batch", "points/s", "speedup", "p50 ms", "p99 ms"});
    for (int b : batch_sizes) {
      BatchResult r = serve_batched(clf.predictor(), d.test.points, b,
                                    min_batches);
      table.add_row({util::Table::fmt_int(b),
                     util::Table::fmt(r.points_per_sec, 0),
                     util::Table::fmt(r.points_per_sec / base_pps, 1) + "x",
                     util::Table::fmt(r.p50_ms, 3),
                     util::Table::fmt(r.p99_ms, 3)});
    }
    std::cout << "\nbackend " << solver::backend_name(backend) << ": fit "
              << fit_s << " s, accuracy " << 100.0 * acc
              << "%, support " << clf.predictor().support_size() << "/"
              << d.train.n() << " columns\n";
    std::cout << "per-point baseline: " << base_pps << " points/s ("
              << d.info.num_classes << " kernel sweeps per point)\n";
    table.print(std::cout, "batched serving (one kernel sweep, all classes)");
  }
  return 0;
}
