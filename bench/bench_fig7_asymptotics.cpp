// Fig. 7a/7b: asymptotic complexity — memory of the compressed matrices
// (H and HSS) and time of the HSS factorization/solve as N grows, against
// the O(N) reference line.
//
//   ./bench_fig7_asymptotics [--nmin 2000] [--nmax 16000] [--dataset SUSY]

#include "bench_common.hpp"
#include "hmat/hmatrix.hpp"
#include "hss/build.hpp"
#include "hss/ulv.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(args, {.n = 2000});
  bench::warn_backend_ignored(args, "measures the H + HSS formats directly");
  const int nmin = static_cast<int>(args.get_int("nmin", c.n));  // --n alias
  const int nmax = static_cast<int>(args.get_int("nmax", 16000));
  const std::string name = c.dataset;
  const std::uint64_t seed = c.seed;

  bench::print_banner(
      "Fig. 7a/7b",
      "memory and factor/solve time vs N with O(N) reference (SUSY)",
      "N=0.5M..4.5M on Cori -> geometric N sweep " + std::to_string(nmin) +
          ".." + std::to_string(nmax) + " on one node");

  util::Table table({"N", "H mem (MB)", "HSS mem (MB)", "O(N) ref (MB)",
                     "factor (s)", "solve (s)", "O(N) ref (s)"});

  double mem_ref_scale = -1.0, time_ref_scale = -1.0;
  for (int n = nmin; n <= nmax; n *= 2) {
    bench::PreparedData d = bench::prepare(name, n, 100, seed);

    cluster::OrderingOptions copts;
    copts.leaf_size = 16;
    cluster::ClusterTree tree = cluster::build_cluster_tree(
        d.train.points, cluster::OrderingMethod::kTwoMeans, copts);
    la::Matrix permuted =
        cluster::apply_row_permutation(d.train.points, tree.perm());
    kernel::KernelMatrix km(
        std::move(permuted),
        {kernel::KernelType::kGaussian, d.info.h, 2, 1.0}, d.info.lambda);

    hmat::HOptions hopts;
    hopts.rtol = c.rtol;  // the classification tolerance; H only feeds sampling
    hmat::HMatrix h(km, tree, hopts);

    hss::ExtractFn extract = [&](const std::vector<int>& r,
                                 const std::vector<int>& c) {
      return km.extract(r, c);
    };
    hss::SampleFn sample = [&](const la::Matrix& r) { return h.multiply(r); };
    hss::HSSOptions opts;
    opts.rtol = c.rtol;
    hss::HSSMatrix hssm =
        hss::build_hss_randomized(tree, extract, sample, {}, opts);

    util::Timer tf;
    hss::ULVFactorization ulv(hssm);
    const double factor_s = tf.seconds();

    la::Vector b(d.train.n(), 1.0);
    util::Timer ts;
    la::Vector x = ulv.solve(b);
    const double solve_s = ts.seconds();
    (void)x;

    const double hss_mb =
        static_cast<double>(hssm.memory_bytes()) / (1024.0 * 1024.0);
    if (mem_ref_scale < 0) {
      mem_ref_scale = hss_mb / n;
      time_ref_scale = std::max(factor_s, 1e-6) / n;
    }

    table.add_row({util::Table::fmt_int(d.train.n()),
                   util::Table::fmt_mb(
                       static_cast<double>(h.stats().memory_bytes)),
                   util::Table::fmt(hss_mb),
                   util::Table::fmt(mem_ref_scale * n),
                   util::Table::fmt(factor_s),
                   util::Table::fmt(solve_s, 4),
                   util::Table::fmt(time_ref_scale * n)});
  }
  table.print(std::cout, "Fig. 7: asymptotic memory and time (O(N) column is "
                         "anchored at the smallest N)");
  std::cout << "shape to check vs the paper: both memory columns and the\n"
               "factorization time track the O(N) reference within a modest\n"
               "factor (near-linear; the paper notes mild rank growth with\n"
               "dimension, Fig. 7 uses SUSY d=8 where growth is smallest).\n"
            << "scale reference (paper Sec. 5.5): dense 1M matrix = 8,000 GB;"
               " HSS at 1M = 1.3 GB.\n";
  return 0;
}
