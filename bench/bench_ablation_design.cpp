// Ablations of the design choices DESIGN.md calls out:
//   (1) HSS leaf size (the paper fixes 16 and notes it trades memory, not
//       accuracy),
//   (2) compression tolerance vs classification accuracy (the paper's claim
//       that tolerance 0.1 loses no accuracy vs the exact kernel),
//   (3) dense vs H-matrix sampling for the HSS construction (the paper's
//       "2 hours -> 10 minutes" observation, Section 5.6).
//
//   ./bench_ablation_design [--n 3000] [--dataset PEN]

#include "bench_common.hpp"
#include "hss/build.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(args, {.n = 3000, .dataset = "PEN"});

  bench::print_banner("Ablation", "leaf size, tolerance, sampling engine",
                      "");

  bench::PreparedData d = bench::prepare(c.dataset, c.n, 500, c.seed);
  const auto ytrain = d.train.one_vs_all(d.info.target_class);
  const auto ytest = d.test.one_vs_all(d.info.target_class);

  // --- (1) leaf size -----------------------------------------------------
  {
    util::Table table({"leaf size", "memory (MB)", "max rank",
                       "construct (s)", "factor (s)", "accuracy"});
    for (int leaf : {8, 16, 32, 64, 128}) {
      krr::KRROptions opts;
      opts.ordering = cluster::OrderingMethod::kTwoMeans;
      opts.backend = c.backend;
      opts.kernel.h = d.info.h;
      opts.lambda = d.info.lambda;
      opts.hss_rtol = c.rtol;
      opts.leaf_size = leaf;
      krr::KRRClassifier clf(opts);
      clf.fit(d.train.points, ytrain);
      const auto& st = clf.model().stats();
      table.add_row({util::Table::fmt_int(leaf),
                     util::Table::fmt_mb(
                         static_cast<double>(st.compressed_memory_bytes)),
                     util::Table::fmt_int(st.max_rank),
                     util::Table::fmt(st.compress_seconds),
                     util::Table::fmt(st.factor_seconds),
                     util::Table::fmt_pct(
                         clf.accuracy(d.test.points, ytest))});
    }
    table.print(std::cout, "(1) leaf size (paper uses 16)");
  }

  // --- (2) tolerance vs accuracy ------------------------------------------
  {
    // Exact dense reference first.
    krr::KRROptions dense_opts;
    dense_opts.ordering = cluster::OrderingMethod::kTwoMeans;
    dense_opts.backend = krr::SolverBackend::kDenseExact;
    dense_opts.kernel.h = d.info.h;
    dense_opts.lambda = d.info.lambda;
    krr::KRRClassifier dense_clf(dense_opts);
    dense_clf.fit(d.train.points, ytrain);
    const double dense_acc = dense_clf.accuracy(d.test.points, ytest);

    util::Table table({"tolerance", "memory (MB)", "accuracy",
                       "exact-kernel accuracy"});
    for (double tol : {0.5, 0.1, 0.01, 1e-4, 1e-6}) {
      krr::KRROptions opts = dense_opts;
      opts.backend = c.backend;
      opts.hss_rtol = tol;
      krr::KRRClassifier clf(opts);
      clf.fit(d.train.points, ytrain);
      table.add_row({util::Table::fmt_sci(tol, 0),
                     util::Table::fmt_mb(static_cast<double>(
                         clf.model().stats().compressed_memory_bytes)),
                     util::Table::fmt_pct(
                         clf.accuracy(d.test.points, ytest)),
                     util::Table::fmt_pct(dense_acc)});
    }
    table.print(std::cout,
                "(2) compression tolerance vs accuracy (paper: tol 0.1 "
                "matches the exact kernel)");
  }

  // --- (3) sampling engine -------------------------------------------------
  {
    util::Table table({"sampling", "H build (s)", "HSS construct (s)",
                       "of which sampling (s)", "total (s)"});
    for (bool use_h : {false, true}) {
      krr::KRROptions opts;
      opts.ordering = cluster::OrderingMethod::kTwoMeans;
      opts.backend = use_h ? krr::SolverBackend::kHSSRandomH
                           : krr::SolverBackend::kHSSRandomDense;
      opts.kernel.h = d.info.h;
      opts.lambda = d.info.lambda;
      opts.hss_rtol = c.rtol;
      util::Timer t;
      krr::KRRModel model(opts);
      model.fit(d.train.points);
      const double total = t.seconds();
      const auto& st = model.stats();
      table.add_row({use_h ? "H matrix (fast)" : "dense O(n^2)",
                     util::Table::fmt(st.h_construction_seconds),
                     util::Table::fmt(st.compress_seconds),
                     util::Table::fmt(st.sampling_seconds),
                     util::Table::fmt(total)});
    }
    table.print(std::cout,
                "(3) dense vs H-accelerated sampling (paper Sec. 5.6)");
  }
  return 0;
}
