// Fig. 1a/1b + Table 1: singular value decay of the GAS1K kernel matrix and
// its off-diagonal block, with and without 2-means (2MN) preprocessing.
//
//   ./bench_fig1_svd_decay [--n 1000] [--threads 0]
//
// Prints (a) decimated singular-value series of the off-diagonal n/2 x n/2
// block K(1,2) and of the full kernel matrix for h in {0.1, 1, 10}, under
// natural (NP) and 2MN orderings, and (b) the Table 1 effective ranks
// (#sigma_k > 0.01 of K(1,2)) for h in {0.01, 0.1, 1, 10, 100}.

#include "bench_common.hpp"
#include "la/svd.hpp"

using namespace khss;

namespace {

la::Matrix offdiag_block(const kernel::KernelMatrix& km) {
  const int n = km.n();
  std::vector<int> rows(n / 2), cols(n - n / 2);
  for (int i = 0; i < n / 2; ++i) rows[i] = i;
  for (int i = n / 2; i < n; ++i) cols[i - n / 2] = i;
  return km.extract(rows, cols);
}

kernel::KernelMatrix reorder(const la::Matrix& pts,
                             const cluster::ClusterTree& tree, double h) {
  la::Matrix permuted = cluster::apply_row_permutation(pts, tree.perm());
  return kernel::KernelMatrix(
      std::move(permuted),
      {kernel::KernelType::kGaussian, h, 2, 1.0});
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 1000));
  bench::apply_threads(args);

  bench::print_banner(
      "Fig. 1a/1b + Table 1",
      "GAS1K singular values, natural vs 2MN ordering",
      "GAS dataset -> synthetic twin (d=128, 6 classes, low intrinsic dim)");

  data::Dataset gas = data::make_paper_dataset("GAS", n);
  data::ColumnTransform t = data::fit_zscore(gas.points);
  t.apply(gas.points);

  cluster::OrderingOptions copts;
  copts.leaf_size = 16;
  cluster::ClusterTree np = cluster::build_cluster_tree(
      gas.points, cluster::OrderingMethod::kNatural, copts);
  cluster::ClusterTree mn = cluster::build_cluster_tree(
      gas.points, cluster::OrderingMethod::kTwoMeans, copts);

  // --- Fig. 1a / 1b: decay series -------------------------------------
  const std::vector<double> fig_h = {0.1, 1.0, 10.0};
  for (bool full : {false, true}) {
    util::Table table([&] {
      std::vector<std::string> hdr{"k"};
      for (double h : fig_h) {
        hdr.push_back("h=" + util::Table::fmt(h, 1) + " NP");
        hdr.push_back("h=" + util::Table::fmt(h, 1) + " 2MN");
      }
      return hdr;
    }());

    std::vector<std::vector<double>> series;
    for (double h : fig_h) {
      for (const auto* tree : {&np, &mn}) {
        kernel::KernelMatrix km = reorder(gas.points, *tree, h);
        la::Matrix m = full ? km.dense() : offdiag_block(km);
        series.push_back(la::singular_values(m));
      }
    }

    const int len = static_cast<int>(series[0].size());
    const int step = std::max(1, len / 16);
    for (int k = 0; k < len; k += step) {
      std::vector<std::string> row{util::Table::fmt_int(k + 1)};
      for (const auto& s : series) row.push_back(util::Table::fmt_sci(s[k]));
      table.add_row(std::move(row));
    }
    table.print(std::cout,
                full ? "Fig. 1b: singular values of the full kernel matrix"
                     : "Fig. 1a: singular values of the off-diagonal block");
  }

  // --- Table 1: effective ranks ----------------------------------------
  const std::vector<double> tab_h = {0.01, 0.1, 1.0, 10.0, 100.0};
  util::Table table([&] {
    std::vector<std::string> hdr{"ordering"};
    for (double h : tab_h) hdr.push_back("h=" + util::Table::fmt(h, 2));
    return hdr;
  }());
  const std::vector<std::pair<const cluster::ClusterTree*, std::string>>
      entries = {{&np, "N/P"}, {&mn, "2MN"}};
  for (const auto& entry : entries) {
    std::vector<std::string> row{entry.second};
    for (double h : tab_h) {
      kernel::KernelMatrix km = reorder(gas.points, *entry.first, h);
      const int rank =
          la::effective_rank(la::singular_values(offdiag_block(km)), 0.01);
      row.push_back(util::Table::fmt_int(rank));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "Table 1: effective rank of K(1,2) (#singular values > 0.01)");
  std::cout << "paper (GAS1K): N/P ranks 1/23/338/129/14, 2MN ranks "
               "1/1/78/76/12 — expect the same mid-h hump and the same\n"
               "large NP->2MN reduction at h ~ 1.\n";
  return 0;
}
