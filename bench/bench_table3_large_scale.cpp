// Table 3: large-scale prediction accuracy at the paper's operating points.
//
//   ./bench_table3_large_scale [--n 10000] [--ntest 1000] [--sieve 0]
//                              [--json out.json]
//
// The paper trains on 0.5M-4.5M points on 1,024 Cori cores; the default here
// is scaled to a single node (the pipeline is the same H-accelerated HSS
// path — raise --n as far as memory/time allow, with --sieve keeping the
// ordering linear at large n).  The paper's (h, lambda) for Table 3 differ
// from Table 2 (they were tuned at scale); both are shown.  Runs route
// through the scale harness (scale_common.hpp), so --json emits the same
// per-phase row schema as bench_scale.

#include "scale_common.hpp"

using namespace khss;

namespace {
struct Table3Row {
  const char* name;
  double paper_n_millions;
  double h;
  double lambda;
  double paper_acc;
};
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(
      args, {.n = 10000, .backend = krr::SolverBackend::kHSSRandomH});
  const int n = c.n;
  const int ntest = static_cast<int>(args.get_int("ntest", 1000));
  const int sieve = static_cast<int>(args.get_int("sieve", 0));

  bench::print_banner(
      "Table 3", "large-scale prediction on test data",
      "0.5M-4.5M Cori-scale training -> n=" + std::to_string(n) +
          " single-node twin runs, same pipeline (H sampling + HSS ULV)");

  // The paper's Table 3 rows: dataset, N, d, h, lambda, accuracy.
  const std::vector<Table3Row> rows = {
      {"SUSY", 4.5, 0.08, 10.0, 0.73},
      {"MNIST", 1.6, 1.1, 10.0, 0.99},
      {"COVTYPE", 0.5, 0.07, 0.3, 0.99},
      {"HEPMASS", 1.0, 0.7, 0.5, 0.90},
  };

  util::Json doc = bench::json_header("table3_large_scale", c);
  doc.set("ntest", static_cast<long>(ntest));
  doc.set("sieve", static_cast<long>(sieve));
  util::Json rows_json = util::Json::array();

  util::Table table({"dataset", "paper N", "N here", "d", "h", "lambda",
                     "acc here", "paper acc", "fit (s)", "mem (MB)",
                     "max rank"});
  for (const auto& row : rows) {
    bench::PreparedData d = bench::prepare(row.name, n, ntest, c.seed);

    bench::ScaleRunConfig cfg;
    cfg.ordering = cluster::OrderingMethod::kTwoMeans;
    cfg.sieve = sieve;
    cfg.h = row.h;
    cfg.lambda = row.lambda;
    cfg.rtol = c.rtol;
    cfg.backend = c.backend;
    cfg.seed = c.seed;

    const bench::ScaleRunResult r = bench::run_scale(d, cfg);

    table.add_row({row.name, util::Table::fmt(row.paper_n_millions, 1) + "M",
                   util::Table::fmt_int(d.train.n()),
                   util::Table::fmt_int(d.info.dim),
                   util::Table::fmt(row.h, 2), util::Table::fmt(row.lambda, 1),
                   util::Table::fmt_pct(r.accuracy),
                   util::Table::fmt_pct(row.paper_acc),
                   util::Table::fmt(r.fit_seconds(), 2),
                   util::Table::fmt_mb(
                       static_cast<double>(r.compressed_memory_bytes)),
                   util::Table::fmt_int(r.max_rank)});
    util::Json jrow = bench::scale_json_row(d.train.n(), cfg, r);
    jrow.set("dataset", row.name);
    jrow.set("paper_accuracy", row.paper_acc);
    rows_json.push(std::move(jrow));
  }
  doc.set("rows", rows_json);
  table.print(std::cout, "Table 3: large-scale prediction");
  std::cout << "note: the paper's (h, lambda) were tuned at million-point\n"
               "scale; at scaled-down n the same operating points can sit off\n"
               "the accuracy plateau (h=0.07-0.08 approaches the identity\n"
               "regime).  The check is that the pipeline runs the paper's\n"
               "configuration end-to-end and accuracy lands near the paper's\n"
               "for the datasets whose twins are scale-robust.\n";

  if (!bench::write_json_if_requested(c, doc)) return 1;
  return 0;
}
