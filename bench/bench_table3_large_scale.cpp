// Table 3: large-scale prediction accuracy at the paper's operating points.
//
//   ./bench_table3_large_scale [--n 10000] [--ntest 1000]
//
// The paper trains on 0.5M-4.5M points on 1,024 Cori cores; the default here
// is scaled to a single node (the pipeline is the same H-accelerated HSS
// path — raise --n as far as memory/time allow).  The paper's (h, lambda)
// for Table 3 differ from Table 2 (they were tuned at scale); both are shown.

#include "bench_common.hpp"

using namespace khss;

namespace {
struct Table3Row {
  const char* name;
  double paper_n_millions;
  double h;
  double lambda;
  double paper_acc;
};
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(
      args, {.n = 10000, .backend = krr::SolverBackend::kHSSRandomH});
  const int n = c.n;
  const int ntest = static_cast<int>(args.get_int("ntest", 1000));

  bench::print_banner(
      "Table 3", "large-scale prediction on test data",
      "0.5M-4.5M Cori-scale training -> n=" + std::to_string(n) +
          " single-node twin runs, same pipeline (H sampling + HSS ULV)");

  // The paper's Table 3 rows: dataset, N, d, h, lambda, accuracy.
  const std::vector<Table3Row> rows = {
      {"SUSY", 4.5, 0.08, 10.0, 0.73},
      {"MNIST", 1.6, 1.1, 10.0, 0.99},
      {"COVTYPE", 0.5, 0.07, 0.3, 0.99},
      {"HEPMASS", 1.0, 0.7, 0.5, 0.90},
  };

  util::Table table({"dataset", "paper N", "N here", "d", "h", "lambda",
                     "acc here", "paper acc", "mem (MB)", "max rank"});
  for (const auto& row : rows) {
    bench::PreparedData d = bench::prepare(row.name, n, ntest, c.seed);

    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = c.backend;
    opts.kernel.h = row.h;
    opts.lambda = row.lambda;
    opts.hss_rtol = c.rtol;

    krr::KRRClassifier clf(opts);
    clf.fit(d.train.points, d.train.one_vs_all(d.info.target_class));
    const double acc = clf.accuracy(d.test.points,
                                    d.test.one_vs_all(d.info.target_class));
    const auto& st = clf.model().stats();

    table.add_row({row.name, util::Table::fmt(row.paper_n_millions, 1) + "M",
                   util::Table::fmt_int(d.train.n()),
                   util::Table::fmt_int(d.info.dim),
                   util::Table::fmt(row.h, 2), util::Table::fmt(row.lambda, 1),
                   util::Table::fmt_pct(acc),
                   util::Table::fmt_pct(row.paper_acc),
                   util::Table::fmt_mb(
                       static_cast<double>(st.compressed_memory_bytes)),
                   util::Table::fmt_int(st.max_rank)});
  }
  table.print(std::cout, "Table 3: large-scale prediction");
  std::cout << "note: the paper's (h, lambda) were tuned at million-point\n"
               "scale; at scaled-down n the same operating points can sit off\n"
               "the accuracy plateau (h=0.07-0.08 approaches the identity\n"
               "regime).  The check is that the pipeline runs the paper's\n"
               "configuration end-to-end and accuracy lands near the paper's\n"
               "for the datasets whose twins are scale-robust.\n";
  return 0;
}
