// Ablation: hierarchical formats vs the globally-low-rank Nystrom baseline
// across the kernel width h (paper Section 1.2: Nystrom is excellent *iff*
// K is globally low rank, which fails at moderate h).
//
//   ./bench_ablation_baselines [--n 2000] [--dataset GAS]
//
// For each h, each method gets a comparable memory budget and reports test
// accuracy: the crossover (Nystrom competitive at extreme h, hierarchical
// methods required at the classification operating point) is the series to
// check.

#include "bench_common.hpp"
#include "krr/nystrom.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 2000));
  const std::string name = args.get_string("dataset", "SUSY");
  const std::uint64_t seed = args.get_int("seed", 42);
  if (args.get_int("threads", 0) > 0) {
    util::set_threads(static_cast<int>(args.get_int("threads", 0)));
  }

  bench::print_banner("Ablation (Sec. 1.2)",
                      "HSS-KRR vs Nystrom baseline across kernel width h",
                      "Nystrom comparator implemented in-repo");

  bench::PreparedData d = bench::prepare(name, n, 500, seed);
  const auto ytrain = d.train.one_vs_all(d.info.target_class);
  const auto ytest = d.test.one_vs_all(d.info.target_class);

  util::Table table({"h", "HSS acc", "HSS mem (MB)", "Nystrom-64 acc",
                     "Nystrom-256 acc", "Nystrom-256 mem (MB)"});

  for (double h : {0.25, 0.5, 1.0, 2.0, 8.0, 32.0}) {
    std::vector<std::string> row{util::Table::fmt(h, 2)};
    {
      krr::KRROptions opts;
      opts.ordering = cluster::OrderingMethod::kTwoMeans;
      opts.backend = krr::SolverBackend::kHSSRandomDense;
      opts.kernel.h = h;
      opts.lambda = d.info.lambda;
      opts.hss_rtol = 1e-1;
      krr::KRRClassifier clf(opts);
      clf.fit(d.train.points, ytrain);
      row.push_back(util::Table::fmt_pct(clf.accuracy(d.test.points, ytest)));
      row.push_back(util::Table::fmt_mb(
          static_cast<double>(clf.model().stats().hss_memory_bytes)));
    }
    for (int landmarks : {64, 256}) {
      krr::NystromOptions opts;
      opts.landmarks = landmarks;
      opts.kernel.h = h;
      opts.lambda = d.info.lambda;
      opts.seed = seed;
      krr::NystromKRR ny(opts);
      const double acc = ny.classify_accuracy(d.train.points, ytrain,
                                              d.test.points, ytest);
      row.push_back(util::Table::fmt_pct(acc));
      if (landmarks == 256) {
        row.push_back(util::Table::fmt_mb(
            static_cast<double>(ny.stats().memory_bytes)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, name + " twin, n=" + std::to_string(d.train.n()) +
                             ": hierarchical vs global low-rank");
  std::cout << "shape to check: at extreme h (globally low-rank regime) both\n"
               "methods match; near the tuned operating point the global\n"
               "low-rank approximation needs many more landmarks to keep up\n"
               "while HSS memory stays moderate.\n";
  return 0;
}
