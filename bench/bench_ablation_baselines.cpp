// Ablation: hierarchical formats vs the globally-low-rank Nystrom baseline
// across the kernel width h (paper Section 1.2: Nystrom is excellent *iff*
// K is globally low rank, which fails at moderate h).
//
//   ./bench_ablation_baselines [--n 2000] [--dataset SUSY]
//                              [--backend hss-rand-dense]
//
// For each h, each method gets a comparable memory budget and reports test
// accuracy: the crossover (Nystrom competitive at extreme h, hierarchical
// methods required at the classification operating point) is the series to
// check.  --backend picks the hierarchical pipeline; Nystrom now runs
// through the same KRRModel path as a registered backend.

#include "bench_common.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(args, {.n = 2000});

  bench::print_banner("Ablation (Sec. 1.2)",
                      "hierarchical KRR vs Nystrom baseline across width h",
                      "Nystrom comparator implemented in-repo");

  bench::PreparedData d = bench::prepare(c.dataset, c.n, 500, c.seed);
  const auto ytrain = d.train.one_vs_all(d.info.target_class);
  const auto ytest = d.test.one_vs_all(d.info.target_class);

  auto run = [&](krr::SolverBackend backend, double h,
                 int landmarks) -> krr::KRRClassifier {
    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = backend;
    opts.kernel.h = h;
    opts.lambda = d.info.lambda;
    opts.hss_rtol = c.rtol;
    opts.nystrom_landmarks = landmarks;
    opts.seed = c.seed;
    krr::KRRClassifier clf(opts);
    clf.fit(d.train.points, ytrain);
    return clf;
  };

  const std::string hier = krr::backend_name(c.backend);
  util::Table table({"h", hier + " acc", hier + " mem (MB)",
                     "Nystrom-64 acc", "Nystrom-256 acc",
                     "Nystrom-256 mem (MB)"});

  for (double h : {0.25, 0.5, 1.0, 2.0, 8.0, 32.0}) {
    std::vector<std::string> row{util::Table::fmt(h, 2)};
    {
      krr::KRRClassifier clf = run(c.backend, h, 256);
      row.push_back(util::Table::fmt_pct(clf.accuracy(d.test.points, ytest)));
      row.push_back(util::Table::fmt_mb(static_cast<double>(
          clf.model().stats().compressed_memory_bytes)));
    }
    // The baseline is a registered backend too — same pipeline, only the
    // landmark budget varies.
    for (int landmarks : {64, 256}) {
      krr::KRRClassifier clf = run(krr::SolverBackend::kNystrom, h, landmarks);
      row.push_back(util::Table::fmt_pct(clf.accuracy(d.test.points, ytest)));
      if (landmarks == 256) {
        row.push_back(util::Table::fmt_mb(static_cast<double>(
            clf.model().stats().compressed_memory_bytes)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, c.dataset + " twin, n=" +
                             std::to_string(d.train.n()) +
                             ": hierarchical vs global low-rank");
  std::cout << "shape to check: at extreme h (globally low-rank regime) both\n"
               "methods match; near the tuned operating point the global\n"
               "low-rank approximation needs many more landmarks to keep up\n"
               "while hierarchical memory stays moderate.\n";
  return 0;
}
