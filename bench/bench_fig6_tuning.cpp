// Fig. 6: hyperparameter search on SUSY — grid search vs black-box tuner.
//
//   ./bench_fig6_tuning [--n 1500] [--grid 8] [--budget 100]
//
// Fig. 6a in the paper is a 128x128 grid (16,384 runs); here the grid is
// coarse by default (--grid 128 reproduces the full sweep given time).  The
// black-box tuner runs with the paper's ~100-evaluation budget and should
// reach at least the grid's best accuracy with far fewer compressions.

#include "bench_common.hpp"
#include "tune/tuner.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(args, {.n = 1500});
  const int n = c.n;
  const std::uint64_t seed = c.seed;
  const int grid_points = static_cast<int>(args.get_int("grid", 8));
  const int budget = static_cast<int>(args.get_int("budget", 100));

  bench::print_banner("Fig. 6a/6b",
                      "grid search vs black-box tuning of (h, lambda), " +
                          c.dataset,
                      "OpenTuner -> random-multistart Nelder-Mead, budget " +
                          std::to_string(budget));

  data::Dataset full = data::make_paper_dataset(c.dataset, n + 1000, seed);
  util::Rng rng(seed + 1);
  data::Split split = data::split_and_normalize(
      full, static_cast<double>(n) / full.n(), 500.0 / full.n(),
      500.0 / full.n(), rng);

  // Any registered backend can drive the tuner: the lambda-only fast path
  // holds format-independently (diagonal update + refactor).
  krr::KRROptions base;
  base.ordering = cluster::OrderingMethod::kTwoMeans;
  base.backend = c.backend;
  base.hss_rtol = c.rtol;

  const auto ytrain = split.train.one_vs_all(1);
  const auto yvalid = split.validation.one_vs_all(1);

  // --- Fig. 6a: the grid (accuracy landscape) --------------------------
  tune::TuneResult grid_res;
  int grid_compressions = 0;
  {
    tune::KRRObjective obj(base, split.train.points, ytrain,
                           split.validation.points, yvalid);
    tune::Objective fn = [&obj](double h, double l) { return obj(h, l); };
    tune::GridSpec grid;
    grid.h_min = 0.25;
    grid.h_max = 2.0;
    grid.lambda_min = 4.0;
    grid.lambda_max = 10.0;  // the paper's Fig. 6a axes
    grid.h_points = grid_points;
    grid.lambda_points = grid_points;
    grid_res = tune::grid_search(fn, grid);
    grid_compressions = obj.compressions();

    // Print the landscape row-by-row (h down, lambda across).
    util::Table table([&] {
      std::vector<std::string> hdr{"h \\ lambda"};
      for (int i = 0; i < grid_points; ++i) {
        hdr.push_back(util::Table::fmt(
            grid_res.history[static_cast<std::size_t>(i)].lambda, 2));
      }
      return hdr;
    }());
    for (int ih = 0; ih < grid_points; ++ih) {
      std::vector<std::string> row{util::Table::fmt(
          grid_res.history[static_cast<std::size_t>(ih) * grid_points].h, 2)};
      for (int il = 0; il < grid_points; ++il) {
        row.push_back(util::Table::fmt_pct(
            grid_res.history[static_cast<std::size_t>(ih) * grid_points + il]
                .accuracy));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout, "Fig. 6a: validation accuracy landscape (grid)");
  }

  // --- Fig. 6b: black-box tuner ----------------------------------------
  tune::TuneResult bb_res;
  int bb_compressions = 0;
  {
    tune::KRRObjective obj(base, split.train.points, ytrain,
                           split.validation.points, yvalid);
    tune::Objective fn = [&obj](double h, double l) { return obj(h, l); };
    tune::BlackBoxSpec spec;
    spec.h_min = 0.25;
    spec.h_max = 2.0;
    spec.lambda_min = 2.0;
    spec.lambda_max = 10.0;
    spec.budget = budget;
    bb_res = tune::black_box_search(fn, spec);
    bb_compressions = obj.compressions();
  }

  util::Table summary({"tuner", "evals", "compressions", "best h",
                       "best lambda", "best validation acc"});
  summary.add_row({"grid", util::Table::fmt_int(grid_res.evaluations),
                   util::Table::fmt_int(grid_compressions),
                   util::Table::fmt(grid_res.best_h),
                   util::Table::fmt(grid_res.best_lambda),
                   util::Table::fmt_pct(grid_res.best_accuracy)});
  summary.add_row({"black-box", util::Table::fmt_int(bb_res.evaluations),
                   util::Table::fmt_int(bb_compressions),
                   util::Table::fmt(bb_res.best_h),
                   util::Table::fmt(bb_res.best_lambda),
                   util::Table::fmt_pct(bb_res.best_accuracy)});
  summary.print(std::cout, "Fig. 6 summary");
  std::cout << "shape to check vs the paper: the black-box tuner matches or\n"
               "beats the grid's best accuracy with ~" << budget
            << " evaluations instead of " << grid_points << "^2 grid runs.\n";
  return 0;
}
