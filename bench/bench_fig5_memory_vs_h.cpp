// Fig. 5: HSS memory as a function of the Gaussian width h for the four
// preprocessing methods (GAS dataset, lambda = 4).
//
//   ./bench_fig5_memory_vs_h [--n 2000] [--hmin 0.5] [--hmax 16] [--points 6]

#include <cmath>

#include "bench_common.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(args, {.n = 2000, .dataset = "GAS"});
  const double hmin = args.get_double("hmin", 0.5);
  const double hmax = args.get_double("hmax", 16.0);
  const int points = static_cast<int>(args.get_int("points", 6));

  bench::print_banner("Fig. 5",
                      "GAS10K memory vs h for the four orderings (lambda=4)",
                      "GAS10K -> GAS twin at n=" + std::to_string(c.n));

  bench::PreparedData d = bench::prepare(c.dataset, c.n, 200, c.seed);

  util::Table table({"h", "Natural (MB)", "Kd (MB)", "PCA (MB)",
                     "2 Means (MB)"});
  for (int i = 0; i < points; ++i) {
    const double t = points > 1 ? static_cast<double>(i) / (points - 1) : 0.5;
    const double h = hmin * std::pow(hmax / hmin, t);

    std::vector<std::string> row{util::Table::fmt(h, 2)};
    for (auto method : bench::paper_orderings()) {
      krr::KRROptions opts;
      opts.ordering = method;
      opts.backend = c.backend;
      opts.kernel.h = h;
      opts.lambda = 4.0;  // the paper's Fig. 5 setting
      opts.hss_rtol = c.rtol;
      krr::KRRModel model(opts);
      model.fit(d.train.points);
      row.push_back(util::Table::fmt_mb(
          static_cast<double>(model.stats().compressed_memory_bytes)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "Fig. 5: memory (MB) vs h");
  std::cout << "shape to check vs the paper: memory peaks at intermediate h,\n"
               "2 Means lowest across the whole sweep, Natural highest.\n";
  return 0;
}
