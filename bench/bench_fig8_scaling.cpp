// Fig. 8: strong scaling of the factorization phase across parallelism
// levels for the four large datasets.
//
//   ./bench_fig8_scaling [--n 8000] [--maxthreads 0(=hw)]
//
// Paper context: 2^5..2^10 Cori cores; here OpenMP threads 1..hardware
// (DESIGN.md substitution #3).  The paper's shape: near-linear scaling that
// flattens when per-core work gets too small, and MNIST (d=784) slowest
// despite not being the largest N because rank grows with dimension.

#include "bench_common.hpp"
#include "hss/ulv.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(
      args, {.n = 4000, .backend = krr::SolverBackend::kHSSRandomH});
  bench::require_hss_backend(args.program(), c.backend);
  int maxthreads = static_cast<int>(args.get_int("maxthreads", 0));
  if (maxthreads <= 0) maxthreads = util::hardware_threads();
  const int n = c.n;
  const std::uint64_t seed = c.seed;

  bench::print_banner("Fig. 8",
                      "strong scaling of the ULV factorization, 4 datasets",
                      "2^5..2^10 Cori cores -> 1.." +
                          std::to_string(maxthreads) + " OpenMP threads, n=" +
                          std::to_string(n));

  const std::vector<std::string> names = {"MNIST", "COVTYPE", "HEPMASS",
                                          "SUSY"};

  std::vector<int> thread_counts;
  for (int t = 1; t <= maxthreads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != maxthreads) thread_counts.push_back(maxthreads);

  util::Table table([&] {
    std::vector<std::string> hdr{"dataset (d)"};
    for (int t : thread_counts) {
      hdr.push_back("t=" + std::to_string(t) + " (s)");
    }
    hdr.push_back("speedup");
    return hdr;
  }());

  for (const auto& name : names) {
    bench::PreparedData d = bench::prepare(name, n, 100, seed);

    // Build the compressed matrix once at full parallelism; Fig. 8 times
    // only the factorization phase.
    util::set_threads(maxthreads);
    // Any HSS-building backend works here (model.hss() checks); the
    // factorization being timed is always the ULV.
    krr::KRROptions opts;
    opts.ordering = cluster::OrderingMethod::kTwoMeans;
    opts.backend = c.backend;
    opts.kernel.h = d.info.h;
    opts.lambda = d.info.lambda;
    opts.hss_rtol = c.rtol;
    krr::KRRModel model(opts);
    model.fit(d.train.points);

    std::vector<std::string> row{name + " (" + std::to_string(d.info.dim) +
                                 ")"};
    double first = 0.0, last = 0.0;
    for (int t : thread_counts) {
      util::set_threads(t);
      util::Timer timer;
      hss::ULVFactorization ulv(model.hss());
      const double s = timer.seconds();
      (void)ulv;
      row.push_back(util::Table::fmt(s, 3));
      if (t == thread_counts.front()) first = s;
      last = s;
    }
    row.push_back(util::Table::fmt(first / std::max(last, 1e-9), 2) + "x");
    table.add_row(std::move(row));
  }
  util::set_threads(util::hardware_threads());

  table.print(std::cout, "Fig. 8: factorization time vs threads");
  std::cout << "shape to check vs the paper: time decreases with threads and\n"
               "flattens at high counts; the high-dimensional dataset (MNIST\n"
               "twin) is the most expensive at equal N because ranks grow\n"
               "with dimension.\n";
  return 0;
}
