// Regression harness for the dense compute core (DESIGN.md "Compute core").
//
//   ./bench_micro_la [--sizes 128,256,512] [--mt-sizes 512,1024]
//                    [--nrhs 64] [--reps 3] [--threads N]
//                    [--json BENCH_la.json]
//
// Measures the packed/blocked kernels against the retained naive baselines
// (la::gemm_naive and local copies of the pre-blocking Cholesky/TRSM loops)
// and reports GFLOP/s plus blocked-over-naive speedups.  With --json the
// same numbers go to a structured file — the cross-PR perf trajectory
// (BENCH_la.json); CI runs this on a small fixed size and uploads the file
// as an artifact.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "la/blas.hpp"
#include "la/chol.hpp"
#include "la/gemm_kernel.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"
#include "util/timer.hpp"

using namespace khss;

namespace {

la::Matrix random_matrix(int m, int n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix a(m, n);
  rng.fill_normal(a.data(), a.size());
  return a;
}

la::Matrix random_spd(int n, std::uint64_t seed) {
  la::Matrix g = random_matrix(n, n, seed);
  la::Matrix a = la::matmul(g, g, la::Trans::kNo, la::Trans::kYes);
  a.shift_diagonal(static_cast<double>(n));
  return a;
}

// Pre-blocking baselines, kept verbatim so the speedup column measures the
// cache-blocked core against what this repo shipped before it.
namespace naive {

bool cholesky_inplace(la::Matrix& a) {
  const int n = a.rows();
  for (int k = 0; k < n; ++k) {
    double d = a(k, k);
    for (int p = 0; p < k; ++p) d -= a(k, p) * a(k, p);
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a(k, k) = d;
    const double inv = 1.0 / d;
    for (int i = k + 1; i < n; ++i) {
      double s = a(i, k);
      const double* ai = a.row(i);
      const double* ak = a.row(k);
      for (int p = 0; p < k; ++p) s -= ai[p] * ak[p];
      a(i, k) = s * inv;
    }
  }
  return true;
}

void trsm_lower_left(const la::Matrix& l, la::Matrix& b) {
  const int n = l.rows(), nrhs = b.cols();
  for (int i = 0; i < n; ++i) {
    double* bi = b.row(i);
    for (int p = 0; p < i; ++p) {
      const double lip = l(i, p);
      const double* bp = b.row(p);
      for (int j = 0; j < nrhs; ++j) bi[j] -= lip * bp[j];
    }
    const double inv = 1.0 / l(i, i);
    for (int j = 0; j < nrhs; ++j) bi[j] *= inv;
  }
}

void lu_inplace(la::Matrix& a) {
  const int n = a.rows();
  for (int k = 0; k < n; ++k) {
    int piv = k;
    double best = std::fabs(a(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::fabs(a(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (piv != k) {
      for (int j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
    }
    const double inv = 1.0 / a(k, k);
    for (int i = k + 1; i < n; ++i) a(i, k) *= inv;
    for (int i = k + 1; i < n; ++i) {
      const double lik = a(i, k);
      const double* ak = a.row(k);
      double* ai = a.row(i);
      for (int j = k + 1; j < n; ++j) ai[j] -= lik * ak[j];
    }
  }
}

}  // namespace naive

// Best-of-reps wall time of fn() after one untimed warmup.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    const double s = t.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

double gflops(double flops, double seconds) {
  return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::warn_backend_ignored(args, "benchmarks the la/ kernels directly");
  bench::CommonArgs c = bench::parse_common(args, {.n = 0, .dataset = "-"});
  const std::vector<int> sizes =
      bench::parse_sizes(args.get_string("sizes", "128,256,512"), args.program());
  // This bench is sized by --sizes, not --n; keep the header's n honest.
  c.n = *std::max_element(sizes.begin(), sizes.end());
  const int nrhs = static_cast<int>(args.get_int("nrhs", 64));
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 3)));

  bench::print_banner(
      "micro_la", "packed/blocked compute core vs naive baselines",
      "single-node " + std::to_string(util::max_threads()) + " threads, " +
          std::string(la::detail::gemm_kernel_name()) + " microkernel");

  const la::detail::GemmBlocking blk = la::detail::gemm_blocking();
  util::Json doc = bench::json_header("bench_micro_la", c);
  doc.set("nrhs", static_cast<long>(nrhs));
  doc.set("reps", static_cast<long>(reps));
  doc.set("microkernel", la::detail::gemm_kernel_name());
  doc.set("blocking", util::Json::object()
                          .set("kc", static_cast<long>(blk.kc))
                          .set("mc", static_cast<long>(blk.mc))
                          .set("nc", static_cast<long>(blk.nc)));
  util::Json jgemm = util::Json::array();
  util::Json jgemm_nt = util::Json::array();
  util::Json jchol = util::Json::array();
  util::Json jtrsm = util::Json::array();
  util::Json jlu = util::Json::array();
  util::Json jqr = util::Json::array();

  util::Table tg({"kernel", "n", "seconds", "GFLOP/s", "naive GF/s",
                  "speedup"});
  for (const int n : sizes) {
    const double mm_flops = 2.0 * n * n * n;
    la::Matrix a = random_matrix(n, n, 1);
    la::Matrix b = random_matrix(n, n, 2);
    la::Matrix cmat(n, n);

    // GEMM NN: packed core vs retained naive kernel.
    const double t_blk = best_seconds(reps, [&] {
      la::gemm(1.0, a, la::Trans::kNo, b, la::Trans::kNo, 0.0, cmat);
    });
    const double t_nai = best_seconds(reps, [&] {
      la::gemm_naive(1.0, a, la::Trans::kNo, b, la::Trans::kNo, 0.0, cmat);
    });
    tg.add_row({"gemm_nn", std::to_string(n), util::Table::fmt(t_blk, 4),
                util::Table::fmt(gflops(mm_flops, t_blk), 2),
                util::Table::fmt(gflops(mm_flops, t_nai), 2),
                util::Table::fmt(t_nai / t_blk, 2)});
    jgemm.push(util::Json::object()
                   .set("n", static_cast<long>(n))
                   .set("seconds", t_blk)
                   .set("gflops", gflops(mm_flops, t_blk))
                   .set("naive_seconds", t_nai)
                   .set("naive_gflops", gflops(mm_flops, t_nai))
                   .set("speedup", t_nai / t_blk));

    // GEMM NT (the serving path's cross-kernel shape).
    const double t_blk_nt = best_seconds(reps, [&] {
      la::gemm(1.0, a, la::Trans::kNo, b, la::Trans::kYes, 0.0, cmat);
    });
    const double t_nai_nt = best_seconds(reps, [&] {
      la::gemm_naive(1.0, a, la::Trans::kNo, b, la::Trans::kYes, 0.0, cmat);
    });
    tg.add_row({"gemm_nt", std::to_string(n), util::Table::fmt(t_blk_nt, 4),
                util::Table::fmt(gflops(mm_flops, t_blk_nt), 2),
                util::Table::fmt(gflops(mm_flops, t_nai_nt), 2),
                util::Table::fmt(t_nai_nt / t_blk_nt, 2)});
    jgemm_nt.push(util::Json::object()
                      .set("n", static_cast<long>(n))
                      .set("seconds", t_blk_nt)
                      .set("gflops", gflops(mm_flops, t_blk_nt))
                      .set("naive_seconds", t_nai_nt)
                      .set("naive_gflops", gflops(mm_flops, t_nai_nt))
                      .set("speedup", t_nai_nt / t_blk_nt));

    // Blocked right-looking Cholesky vs the pre-blocking left-looking loop.
    const double chol_flops = static_cast<double>(n) * n * n / 3.0;
    la::Matrix spd = random_spd(n, 11);
    const double t_chol = best_seconds(reps, [&] {
      la::CholeskyFactor f(spd);
      (void)f;
    });
    const double t_chol_nai = best_seconds(reps, [&] {
      la::Matrix copy = spd;
      naive::cholesky_inplace(copy);
    });
    tg.add_row({"cholesky", std::to_string(n), util::Table::fmt(t_chol, 4),
                util::Table::fmt(gflops(chol_flops, t_chol), 2),
                util::Table::fmt(gflops(chol_flops, t_chol_nai), 2),
                util::Table::fmt(t_chol_nai / t_chol, 2)});
    jchol.push(util::Json::object()
                   .set("n", static_cast<long>(n))
                   .set("seconds", t_chol)
                   .set("gflops", gflops(chol_flops, t_chol))
                   .set("naive_seconds", t_chol_nai)
                   .set("naive_gflops", gflops(chol_flops, t_chol_nai))
                   .set("speedup", t_chol_nai / t_chol));

    // Blocked multi-RHS forward substitution vs the pre-blocking loop.
    const double trsm_flops = static_cast<double>(n) * n * nrhs;
    la::CholeskyFactor chol(spd);
    la::Matrix rhs = random_matrix(n, nrhs, 21);
    const double t_trsm = best_seconds(reps, [&] {
      la::Matrix x = rhs;
      la::trsm_lower_left(chol.l(), x, false);
    });
    const double t_trsm_nai = best_seconds(reps, [&] {
      la::Matrix x = rhs;
      naive::trsm_lower_left(chol.l(), x);
    });
    tg.add_row({"trsm_lower", std::to_string(n), util::Table::fmt(t_trsm, 4),
                util::Table::fmt(gflops(trsm_flops, t_trsm), 2),
                util::Table::fmt(gflops(trsm_flops, t_trsm_nai), 2),
                util::Table::fmt(t_trsm_nai / t_trsm, 2)});
    jtrsm.push(util::Json::object()
                   .set("n", static_cast<long>(n))
                   .set("nrhs", static_cast<long>(nrhs))
                   .set("seconds", t_trsm)
                   .set("gflops", gflops(trsm_flops, t_trsm))
                   .set("naive_seconds", t_trsm_nai)
                   .set("naive_gflops", gflops(trsm_flops, t_trsm_nai))
                   .set("speedup", t_trsm_nai / t_trsm));

    // Blocked right-looking LU vs the pre-blocking per-step rank-1 loop.
    const double lu_flops = 2.0 * n * n * n / 3.0;
    la::Matrix lum = random_matrix(n, n, 31);
    lum.shift_diagonal(static_cast<double>(n));
    const double t_lu = best_seconds(reps, [&] {
      la::LUFactor f(lum);
      (void)f;
    });
    const double t_lu_nai = best_seconds(reps, [&] {
      la::Matrix copy = lum;
      naive::lu_inplace(copy);
    });
    tg.add_row({"lu", std::to_string(n), util::Table::fmt(t_lu, 4),
                util::Table::fmt(gflops(lu_flops, t_lu), 2),
                util::Table::fmt(gflops(lu_flops, t_lu_nai), 2),
                util::Table::fmt(t_lu_nai / t_lu, 2)});
    jlu.push(util::Json::object()
                 .set("n", static_cast<long>(n))
                 .set("seconds", t_lu)
                 .set("gflops", gflops(lu_flops, t_lu))
                 .set("naive_seconds", t_lu_nai)
                 .set("naive_gflops", gflops(lu_flops, t_lu_nai))
                 .set("speedup", t_lu_nai / t_lu));

    // Householder QR on n x n/2 (algorithm unchanged this PR, but its
    // trailing update and apply paths were parallelized — keep it on the
    // trajectory so regressions there stay visible).
    const int qn = std::max(1, n / 2);
    const double qr_flops =
        2.0 * n * qn * qn - 2.0 * qn * qn * qn / 3.0;
    la::Matrix qa = random_matrix(n, qn, 41);
    const double t_qr = best_seconds(reps, [&] {
      la::QRFactor f(qa);
      (void)f;
    });
    tg.add_row({"qr", std::to_string(n), util::Table::fmt(t_qr, 4),
                util::Table::fmt(gflops(qr_flops, t_qr), 2), "-", "-"});
    jqr.push(util::Json::object()
                 .set("n", static_cast<long>(n))
                 .set("cols", static_cast<long>(qn))
                 .set("seconds", t_qr)
                 .set("gflops", gflops(qr_flops, t_qr)));
  }
  tg.print(std::cout, "compute core vs naive (best of " +
                          std::to_string(reps) + ")");

  // Threaded packed core vs its own serial driver (same kernel, same
  // blocking, bit-identical output — this measures the MC/NR macro-tile
  // fan-out alone).  Rows at 1/2/max threads; numbers from a 1-core CI host
  // are honest ~1.0x and flagged by the "threads" column.
  const int entry_threads = util::max_threads();
  std::vector<int> thread_counts = {1, 2};
  if (entry_threads > 2) thread_counts.push_back(entry_threads);
  const std::vector<int> mt_sizes = bench::parse_sizes(
      args.get_string("mt-sizes", "512,1024"), args.program());
  util::Json jgemm_mt = util::Json::array();
  util::Table tmt({"kernel", "n", "threads", "seconds", "GFLOP/s",
                   "vs serial"});
  for (const int n : mt_sizes) {
    const double mm_flops = 2.0 * n * n * n;
    la::Matrix a = random_matrix(n, n, 5);
    la::Matrix b = random_matrix(n, n, 6);
    la::Matrix cmat(n, n);
    double t_serial = 0.0;
    for (const int t : thread_counts) {
      util::set_threads(t);
      const double tt = best_seconds(reps, [&] {
        la::gemm(1.0, a, la::Trans::kNo, b, la::Trans::kNo, 0.0, cmat);
      });
      if (t == 1) t_serial = tt;
      tmt.add_row({"gemm_nn", std::to_string(n), std::to_string(t),
                   util::Table::fmt(tt, 4),
                   util::Table::fmt(gflops(mm_flops, tt), 2),
                   util::Table::fmt(t_serial > 0.0 ? t_serial / tt : 1.0, 2)});
      jgemm_mt.push(util::Json::object()
                        .set("n", static_cast<long>(n))
                        .set("threads", static_cast<long>(t))
                        .set("seconds", tt)
                        .set("gflops", gflops(mm_flops, tt))
                        .set("speedup_vs_serial",
                             t_serial > 0.0 ? t_serial / tt : 1.0));
    }
  }
  util::set_threads(entry_threads);
  tmt.print(std::cout, "threaded packed core vs serial driver (best of " +
                           std::to_string(reps) + ")");

  doc.set("gemm_nn", std::move(jgemm));
  doc.set("gemm_nt", std::move(jgemm_nt));
  doc.set("cholesky", std::move(jchol));
  doc.set("trsm_lower", std::move(jtrsm));
  doc.set("gemm_threads", std::move(jgemm_mt));
  doc.set("lu", std::move(jlu));
  doc.set("qr", std::move(jqr));
  const bool json_ok = bench::write_json_if_requested(c, doc);

  std::cout << "shape to check: gemm_nn speedup >= 3x at n >= 512 (the\n"
               "acceptance bar for the packed core); cholesky and trsm ride\n"
               "the same microkernel through their blocked updates.\n";
  return json_ok ? 0 : 1;
}
