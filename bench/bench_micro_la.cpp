// Micro-benchmarks of the dense linear algebra substrate (google-benchmark).

#include <benchmark/benchmark.h>

#include "la/blas.hpp"
#include "la/chol.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"
#include "la/rrqr.hpp"
#include "la/svd.hpp"
#include "util/rng.hpp"

namespace la = khss::la;

namespace {

la::Matrix random_matrix(int m, int n, std::uint64_t seed) {
  khss::util::Rng rng(seed);
  la::Matrix a(m, n);
  rng.fill_normal(a.data(), a.size());
  return a;
}

la::Matrix random_spd(int n, std::uint64_t seed) {
  la::Matrix g = random_matrix(n, n, seed);
  la::Matrix a = la::matmul(g, g, la::Trans::kNo, la::Trans::kYes);
  a.shift_diagonal(static_cast<double>(n));
  return a;
}

}  // namespace

static void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = random_matrix(n, n, 1);
  la::Matrix b = random_matrix(n, n, 2);
  la::Matrix c(n, n);
  for (auto _ : state) {
    la::gemm(1.0, a, la::Trans::kNo, b, la::Trans::kNo, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512);

static void BM_GemmTransB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = random_matrix(n, n, 3);
  la::Matrix b = random_matrix(n, n, 4);
  la::Matrix c(n, n);
  for (auto _ : state) {
    la::gemm(1.0, a, la::Trans::kNo, b, la::Trans::kYes, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransB)->Arg(256);

static void BM_QR(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = random_matrix(n, n / 2, 5);
  for (auto _ : state) {
    la::QRFactor qr(a);
    benchmark::DoNotOptimize(&qr);
  }
}
BENCHMARK(BM_QR)->Arg(128)->Arg(512);

static void BM_RRQR_LowRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix u = random_matrix(n, 16, 6);
  la::Matrix v = random_matrix(16, n, 7);
  la::Matrix a = la::matmul(u, v);
  la::TruncationOptions opts;
  opts.rtol = 1e-8;
  for (auto _ : state) {
    la::RRQRResult f = la::rrqr(a, opts);
    benchmark::DoNotOptimize(&f);
  }
}
BENCHMARK(BM_RRQR_LowRank)->Arg(256)->Arg(1024);

static void BM_InterpolativeRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = la::matmul(random_matrix(n, 24, 8), random_matrix(24, 96, 9));
  la::TruncationOptions opts;
  opts.rtol = 1e-6;
  for (auto _ : state) {
    la::RowID rid = la::interpolative_rows(a, opts);
    benchmark::DoNotOptimize(&rid);
  }
}
BENCHMARK(BM_InterpolativeRows)->Arg(128)->Arg(512);

static void BM_LU(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = random_matrix(n, n, 10);
  a.shift_diagonal(n);
  for (auto _ : state) {
    la::LUFactor lu(a);
    benchmark::DoNotOptimize(&lu);
  }
}
BENCHMARK(BM_LU)->Arg(128)->Arg(512);

static void BM_Cholesky(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = random_spd(n, 11);
  for (auto _ : state) {
    la::CholeskyFactor chol(a);
    benchmark::DoNotOptimize(&chol);
  }
}
BENCHMARK(BM_Cholesky)->Arg(128)->Arg(512);

static void BM_JacobiSVD(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = random_matrix(n, n, 12);
  for (auto _ : state) {
    auto s = la::singular_values(a);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_JacobiSVD)->Arg(64)->Arg(128);

static void BM_QLZeroTop(benchmark::State& state) {
  la::Matrix u = random_matrix(64, 24, 13);
  for (auto _ : state) {
    la::QLResult ql = la::ql_zero_top(u);
    benchmark::DoNotOptimize(&ql);
  }
}
BENCHMARK(BM_QLZeroTop);

BENCHMARK_MAIN();
