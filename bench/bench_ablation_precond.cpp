// Ablation (paper Section 6, future work): the loose-tolerance HSS ULV
// factorization as a CG preconditioner vs (a) unpreconditioned CG and
// (b) the tight direct ULV solve.
//
//   ./bench_ablation_precond [--n 4000] [--dataset COVTYPE]
//
// Prints, per preconditioner tolerance: setup time (compression + factor),
// CG iterations, solve time, and the residual against the H operator —
// quantifying the trade-off the paper says it will "report on in future
// work".

#include "bench_common.hpp"
#include "hss/build.hpp"
#include "hss/ulv.hpp"
#include "la/iterative.hpp"
#include "util/timer.hpp"

using namespace khss;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  bench::CommonArgs c = bench::parse_common(
      args, {.n = 4000, .dataset = "COVTYPE", .rtol = 1e-2});
  bench::warn_backend_ignored(args, "ablates the CG preconditioner directly");
  const int n = c.n;
  const std::string name = c.dataset;
  const std::uint64_t seed = c.seed;

  bench::print_banner(
      "Ablation (Sec. 6 future work)",
      "HSS ULV as CG preconditioner: tolerance vs iterations vs time",
      "paper reports this as preliminary; full sweep here");

  bench::PreparedData d = bench::prepare(name, n, 100, seed);

  cluster::OrderingOptions copts;
  copts.leaf_size = 16;
  cluster::ClusterTree tree = cluster::build_cluster_tree(
      d.train.points, cluster::OrderingMethod::kTwoMeans, copts);
  la::Matrix permuted =
      cluster::apply_row_permutation(d.train.points, tree.perm());
  kernel::KernelMatrix km(
      std::move(permuted),
      {kernel::KernelType::kGaussian, d.info.h, 2, 1.0}, d.info.lambda);

  // Operator: H matrix at the pipeline tolerance.
  hmat::HOptions hopts;
  hopts.rtol = c.rtol;
  hmat::HMatrix h(km, tree, hopts);
  la::MatVecFn op = [&h](const la::Vector& v) { return h.multiply(v); };

  util::Rng rng(seed);
  la::Vector b(d.train.n());
  for (auto& v : b) v = rng.normal();

  la::IterativeOptions iopts;
  iopts.rtol = 1e-8;
  iopts.max_iterations = 500;

  util::Table table({"configuration", "setup (s)", "HSS mem (MB)",
                     "CG iters", "solve (s)", "residual"});

  // (a) unpreconditioned CG.
  {
    la::Vector x(d.train.n(), 0.0);
    util::Timer ts;
    la::IterativeResult r = la::pcg(op, nullptr, b, &x, iopts);
    table.add_row({"CG, no preconditioner", "0.00", "-",
                   util::Table::fmt_int(r.iterations),
                   util::Table::fmt(ts.seconds()),
                   util::Table::fmt_sci(r.relative_residual)});
  }

  hss::ExtractFn extract = [&](const std::vector<int>& r,
                               const std::vector<int>& c) {
    return km.extract(r, c);
  };
  hss::SampleFn sample = [&h](const la::Matrix& r) { return h.multiply(r); };

  // (b) CG with HSS ULV preconditioners of decreasing looseness.
  for (double tol : {0.5, 0.3, 0.1, 0.01}) {
    util::Timer setup;
    hss::HSSOptions hssopts;
    hssopts.rtol = tol;
    hss::HSSMatrix hssm =
        hss::build_hss_randomized(tree, extract, sample, {}, hssopts);
    hss::ULVFactorization ulv(hssm);
    const double setup_s = setup.seconds();

    la::MatVecFn precond = [&ulv](const la::Vector& v) {
      return ulv.solve(v);
    };
    la::Vector x(d.train.n(), 0.0);
    util::Timer ts;
    la::IterativeResult r = la::pcg(op, precond, b, &x, iopts);
    table.add_row({"CG + ULV(tol=" + util::Table::fmt(tol, 2) + ")",
                   util::Table::fmt(setup_s),
                   util::Table::fmt_mb(
                       static_cast<double>(hssm.memory_bytes())),
                   util::Table::fmt_int(r.iterations),
                   util::Table::fmt(ts.seconds()),
                   util::Table::fmt_sci(r.relative_residual)});
  }

  // (c) tight direct solve for reference.
  {
    util::Timer setup;
    hss::HSSOptions hssopts;
    hssopts.rtol = 1e-8;
    hss::HSSMatrix hssm =
        hss::build_hss_randomized(tree, extract, sample, {}, hssopts);
    hss::ULVFactorization ulv(hssm);
    const double setup_s = setup.seconds();
    util::Timer ts;
    la::Vector x = ulv.solve(b);
    (void)x;
    table.add_row({"direct ULV (tol=1e-8)", util::Table::fmt(setup_s),
                   util::Table::fmt_mb(
                       static_cast<double>(hssm.memory_bytes())),
                   "-", util::Table::fmt(ts.seconds()), "-"});
  }

  table.print(std::cout, name + " twin, n=" + std::to_string(d.train.n()) +
                             ": preconditioner ablation");
  std::cout << "trade-off to observe: looser preconditioner => cheaper setup\n"
               "and less memory but more CG iterations; the sweet spot sits\n"
               "between tol 0.3 and 0.1, far looser than a direct solve.\n";
  return 0;
}
